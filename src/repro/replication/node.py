"""The replicated Corona server node (paper §4).

One :class:`ReplicatedServerCore` runs on every server of a replicated
deployment.  The node at the head of the server list acts as
**coordinator**: it sequences every multicast (global total order), owns
the cluster-wide group registry, membership view and lock table, monitors
the other servers with heartbeats, and keeps a copy of every group's
state.  The other nodes are **replicas**: they serve their local clients
directly, keep state copies for the groups those clients use (plus any
hot-standby assignments), and forward sequencing/control decisions to the
coordinator.

Message flow for a broadcast from a client of replica R (paper §4.1):

    client -> R        BcastUpdateRequest
    R -> coordinator   ForwardBcast                (after local validation)
    coordinator        allocates seqno, applies to its copy, logs
    coordinator -> S*  SequencedBcast              (only interested servers)
    S* -> clients      Delivery                    (their local members)
    R -> client        Ack                         (on its SequencedBcast)

Failure handling follows §4.2: the coordinator heartbeats every server;
replicas watch for heartbeat silence with position-scaled patience (the
first in line suspects after t, the second after 2t, ...), then run the
ack-from-half-plus-one takeover protocol.  A new coordinator rebuilds the
registry from the surviving replicas' re-registrations and state fetches.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.clock import Clock
from repro.core.errors import (
    CoronaError,
    GroupExistsError,
    LockHeldError,
    NoSuchGroupError,
    NotAuthorizedError,
    PartitionedError,
)
from repro.core.events import (
    CreateGroupStorage,
    OpenConnection,
    StartTimer,
)
from repro.core.events import SendMulticast as SendMulticastEffect
from repro.core.events import WriteCheckpoint as WriteCheckpointEffect
from repro.core.group import Group
from repro.core.ids import ClientId, ConnId, GroupId
from repro.core.log import StateLog
from repro.core.server import ServerConfig, ServerCore, state_from_snapshot
from repro.core.session import GroupAction
from repro.core.transfer import build_snapshot
from repro.storage.store import RecoveredGroup
from repro.wire import codec, frames
from repro.wire.messages import (
    Ack,
    AcquireLockRequest,
    BackupAssign,
    BcastStateRequest,
    BcastUpdateRequest,
    CoordinatorAnnounce,
    CreateGroupRequest,
    DeleteGroupRequest,
    DeliveryMode,
    ElectionReply,
    ElectionRequest,
    ErrorReply,
    ForwardAcquireLock,
    ForwardBcast,
    ForwardCreateGroup,
    ForwardDeleteGroup,
    ForwardOutcome,
    ForwardReduceLog,
    ForwardReleaseLock,
    GroupCreated,
    GroupDeletedNotice,
    GroupDropped,
    GroupInfo,
    GroupInterest,
    GroupListReply,
    GroupMembership,
    GroupMeta,
    Heartbeat,
    HeartbeatAck,
    JoinGroupRequest,
    ListGroupsRequest,
    LockGranted,
    MemberInfo,
    MemberRole,
    MembershipNotice,
    MemberUpdate,
    Message,
    ReduceLogRequest,
    ReduceOrder,
    ReleaseLockRequest,
    RemoteLockGrant,
    SequencedBcast,
    ServerHello,
    ServerHelloReply,
    ServerInfo,
    ServerListUpdate,
    StateFetchReply,
    StateFetchRequest,
    StateSnapshot,
    TransferPolicy,
    TransferSpec,
    UpdateKind,
    UpdateRecord,
)
from repro.replication.partition import (
    ReconcileChooser,
    adopt_senior,
    common_point,
    rollback_state,
)
from repro.replication.topology import ServerList
from repro.wire.messages import (
    ForkNotice,
    GroupForked,
    GroupRebase,
    RebaseNotice,
    ReconcileChoice,
    ReconcileOffer,
    ReconcilePolicy,
)

__all__ = [
    "ReplicationConfig",
    "ReplicatedServerCore",
    "TIMER_HB_SEND",
    "TIMER_HB_WATCH",
    "TIMER_ELECTION",
]

#: Timer keys of the replication layer (shared with tests and tooling so
#: failure-injection scripts can fire them without re-spelling strings).
TIMER_HB_SEND = "repl-hb-send"
TIMER_HB_WATCH = "repl-hb-watch"
TIMER_ELECTION = "repl-election"


@dataclass
class ReplicationConfig:
    """Deployment parameters of one replicated node."""

    #: This server's identity and address.
    info: ServerInfo
    #: The configuration-file server list, in bring-up order; its head is
    #: the initial coordinator.
    initial_servers: tuple[ServerInfo, ...]
    #: Coordinator-to-server heartbeat period (paper §4.2).
    heartbeat_interval: float = 1.0
    #: Base suspicion timeout t; server at succession position p waits p*t.
    suspicion_timeout: float = 3.0
    #: Application policy for diverged groups after a partition heals
    #: (paper §4.2: "the selection [...] is application dependent").
    reconcile_chooser: ReconcileChooser = adopt_senior


@dataclass
class _PendingForward:
    """Bookkeeping for one client request forwarded to the coordinator."""

    conn: ConnId
    request_id: int
    kind: str


class ReplicatedServerCore(ServerCore):
    """A Corona server participating in the replicated service."""

    def __init__(
        self,
        config: ServerConfig,
        rconfig: ReplicationConfig,
        clock: Clock,
        recovered: dict[str, RecoveredGroup] | None = None,
    ) -> None:
        super().__init__(config, clock, recovered=recovered)
        self.rconfig = rconfig
        self.server_list = ServerList(list(rconfig.initial_servers))
        self.epoch = 0
        #: Cluster-wide registry: every group that exists, installed or not.
        self.known_groups: dict[GroupId, GroupCreated] = {}
        #: Group-wide membership view (maintained by the coordinator,
        #: mirrored at replicas through GroupMembership pushes).
        self.global_members: dict[GroupId, dict[ClientId, MemberInfo]] = {}
        #: client id -> server id hosting it (for remote lock grants).
        self.client_server: dict[ClientId, str] = {}
        # coordinator-side registries
        self._interest: dict[GroupId, set[str]] = {}
        self._backups: dict[GroupId, set[str]] = {}
        self._hb_seq = 0
        self._hb_acks: dict[str, float] = {}
        self._remote_waiters: dict[tuple[GroupId, str, ClientId], tuple[str, int]] = {}
        # replica-side state
        self._peer_conn: dict[str, ConnId] = {}
        self._conn_peer: dict[ConnId, str] = {}
        self._pending_forwards: dict[int, _PendingForward] = {}
        self._forward_ids = iter(range(1, 1 << 62))
        self._last_heartbeat = clock.now()
        self._pending_joins: dict[GroupId, list[tuple[ConnId, JoinGroupRequest]]] = {}
        self._buffered: dict[GroupId, list[SequencedBcast]] = {}
        self._fetching: set[GroupId] = set()
        self._fetch_ids = iter(range(1, 1 << 62))
        self._fetch_groups: dict[int, GroupId] = {}
        #: Forwarded broadcasts parked while this (new) coordinator is
        #: still fetching the group's state.
        self._parked_forwards: dict[GroupId, list[tuple[ConnId, ForwardBcast]]] = {}
        self._backup_of: set[GroupId] = set()
        # election state
        self._votes: set[str] = set()
        self._election_dead: set[str] = set()
        self._candidate_epoch = 0
        self._voted_epochs: set[int] = set()
        self._suspects_coordinator = False
        # reconciliation state (junior side)
        self._takeover_base: dict[GroupId, int] = {}
        self._reconcile_with: str | None = None
        self._reconcile_outstanding: set[GroupId] = set()
        self._pending_demotion: ServerHelloReply | None = None
        self._extra_peers: dict[str, ServerInfo] = {}
        self._fetch_purpose: dict[int, str] = {}
        # seed registries from any recovered groups
        for name, group in self.groups.items():
            self.known_groups[name] = GroupCreated(
                name, group.persistent, group.initial_state, group.created_at
            )
        self._server_dispatch: dict[type, Any] = {
            ServerHello: self._on_server_hello,
            ServerHelloReply: self._on_server_hello_reply,
            ServerListUpdate: self._on_server_list,
            Heartbeat: self._on_heartbeat,
            HeartbeatAck: self._on_heartbeat_ack,
            ForwardBcast: self._on_forward_bcast,
            SequencedBcast: self._on_sequenced,
            ForwardCreateGroup: self._on_forward_create,
            ForwardDeleteGroup: self._on_forward_delete,
            ForwardReduceLog: self._on_forward_reduce,
            ForwardAcquireLock: self._on_forward_acquire,
            ForwardReleaseLock: self._on_forward_release,
            RemoteLockGrant: self._on_remote_grant,
            ForwardOutcome: self._on_forward_outcome,
            GroupCreated: self._on_group_created,
            GroupDropped: self._on_group_dropped,
            GroupInterest: self._on_group_interest,
            MemberUpdate: self._on_member_update,
            GroupMembership: self._on_group_membership,
            ReduceOrder: self._on_reduce_order,
            StateFetchRequest: self._on_state_fetch,
            StateFetchReply: self._on_state_fetch_reply,
            ElectionRequest: self._on_election_request,
            ElectionReply: self._on_election_reply,
            CoordinatorAnnounce: self._on_coordinator_announce,
            BackupAssign: self._on_backup_assign,
            ReconcileOffer: self._on_reconcile_offer,
            ReconcileChoice: self._on_reconcile_choice,
            GroupRebase: self._on_group_rebase,
            GroupForked: self._on_group_forked,
        }

    # ------------------------------------------------------------------
    # identity helpers
    # ------------------------------------------------------------------

    @property
    def server_id(self) -> str:
        return self.rconfig.info.server_id

    @property
    def is_coordinator(self) -> bool:
        head = self.server_list.coordinator()
        return head is not None and head.server_id == self.server_id

    @property
    def coordinator_id(self) -> str | None:
        head = self.server_list.coordinator()
        return head.server_id if head else None

    def _coordinator_conn(self) -> ConnId | None:
        coord = self.coordinator_id
        if coord is None or coord == self.server_id:
            return None
        return self._peer_conn.get(coord)

    # ------------------------------------------------------------------
    # startup
    # ------------------------------------------------------------------

    def start(self) -> list:
        """Arm timers and dial the coordinator; host runs this once."""
        if self.is_coordinator:
            self.emit(StartTimer(TIMER_HB_SEND, self.rconfig.heartbeat_interval))
            # the initial coordinator installs every recovered group
            for name in self.groups:
                self._interest.setdefault(name, set())
        else:
            self._dial(self.coordinator_id)
            self.emit(StartTimer(TIMER_HB_WATCH, self.rconfig.heartbeat_interval))
        return []

    def _dial(self, server_id: str | None) -> None:
        if server_id is None or server_id == self.server_id:
            return
        if server_id in self._peer_conn:
            return
        info = self.server_list.get(server_id) or self._extra_peers.get(server_id)
        if info is None:
            return
        self.emit(OpenConnection((info.host, info.port), key=f"peer:{server_id}"))

    def _send_peer(self, server_id: str, message: Message) -> bool:
        conn = self._peer_conn.get(server_id)
        if conn is None:
            return False
        self.send(conn, message)
        return True

    # ------------------------------------------------------------------
    # connection management
    # ------------------------------------------------------------------

    def handle_connected(self, conn: ConnId, peer: Any, key: str) -> None:
        if key.startswith("peer:"):
            server_id = key.split(":", 1)[1]
            self._peer_conn[server_id] = conn
            self._conn_peer[conn] = server_id
            self.send(conn, ServerHello(self.rconfig.info, self.epoch))
            if self._candidate_epoch > self.epoch:
                # mid-election dial completed: deliver our vote request
                self.send(conn, ElectionRequest(self.server_id, self._candidate_epoch))

    def handle_closed(self, conn: ConnId) -> None:
        server_id = self._conn_peer.pop(conn, None)
        if server_id is None:
            super().handle_closed(conn)  # a client connection
            return
        if self._peer_conn.get(server_id) == conn:
            del self._peer_conn[server_id]
        if self.is_coordinator:
            self._coordinator_lost_server(server_id)
        elif server_id == self.coordinator_id:
            self._suspects_coordinator = True
            self._fail_pending_forwards()
            self._schedule_election_attempt()
        elif self._candidate_epoch > self.epoch:
            # an electorate member is unreachable mid-election: it cannot
            # vote, so it leaves the electorate (simultaneous crashes —
            # the paper's k-of-k+1 case)
            self._election_dead.add(server_id)
            self._maybe_win_election()

    def handle_message(self, conn: ConnId, message: Message) -> None:
        handler = self._server_dispatch.get(type(message))
        if handler is None:
            super().handle_message(conn, message)
            return
        try:
            handler(conn, message)
        except CoronaError as err:
            # inter-server messages have no request/reply channel; a
            # protocol error here indicates a bug, so re-raise loudly.
            raise

    # ------------------------------------------------------------------
    # server handshake and list maintenance
    # ------------------------------------------------------------------

    def _on_server_hello(self, conn: ConnId, msg: ServerHello) -> None:
        server_id = msg.info.server_id
        self._peer_conn[server_id] = conn
        self._conn_peer[conn] = server_id
        self.epoch = max(self.epoch, msg.epoch)
        if not self.is_coordinator:
            return  # peer-to-peer link (election traffic only)
        if self.server_list.add(msg.info):
            self._broadcast_server_list()
        self.send(
            conn,
            ServerHelloReply(
                self.server_id, self.epoch,
                tuple(self.server_list.servers), self.server_list.version,
            ),
        )

    def _on_server_hello_reply(self, conn: ConnId, msg: ServerHelloReply) -> None:
        if self._reconcile_with == self._conn_peer.get(conn):
            # junior coordinator contacting the senior after a partition
            # heals: reconcile every group before demoting
            self._pending_demotion = msg
            self._send_reconcile_offers(conn)
            return
        self.server_list.replace(msg.servers, msg.list_version)
        self.epoch = max(self.epoch, msg.epoch)
        self._last_heartbeat = self.clock.now()
        self._suspects_coordinator = False
        self._reregister_with_coordinator()

    def _broadcast_server_list(self) -> None:
        update = ServerListUpdate(
            tuple(self.server_list.servers), self.server_list.version, self.epoch
        )
        for info in self.server_list.peers_of(self.server_id):
            self._send_peer(info.server_id, update)

    def _on_server_list(self, conn: ConnId, msg: ServerListUpdate) -> None:
        if msg.epoch >= self.epoch:
            self.server_list.replace(msg.servers, msg.list_version)

    # ------------------------------------------------------------------
    # heartbeats and failure detection (paper §4.2)
    # ------------------------------------------------------------------

    def handle_timer(self, key: str) -> None:
        if key == TIMER_HB_SEND:
            self._heartbeat_round()
        elif key == TIMER_HB_WATCH:
            self._watch_coordinator()
        elif key == TIMER_ELECTION:
            self._start_election()
        else:
            super().handle_timer(key)

    def _heartbeat_round(self) -> None:
        if not self.is_coordinator:
            return
        self._hb_seq += 1
        beat = Heartbeat(self.server_id, self._hb_seq, self.epoch)
        now = self.clock.now()
        for info in self.server_list.peers_of(self.server_id):
            sid = info.server_id
            if not self._send_peer(sid, beat):
                self._dial(sid)
            last = self._hb_acks.get(sid)
            if last is not None and now - last > self.rconfig.suspicion_timeout:
                self._coordinator_lost_server(sid)
        self.emit(StartTimer(TIMER_HB_SEND, self.rconfig.heartbeat_interval))

    def _on_heartbeat(self, conn: ConnId, msg: Heartbeat) -> None:
        if msg.epoch < self.epoch:
            return  # a deposed coordinator; ignore
        self.epoch = max(self.epoch, msg.epoch)
        self._last_heartbeat = self.clock.now()
        self._suspects_coordinator = False
        self.send(conn, HeartbeatAck(self.server_id, msg.seq, self.epoch))

    def _on_heartbeat_ack(self, conn: ConnId, msg: HeartbeatAck) -> None:
        self._hb_acks[msg.server_id] = self.clock.now()

    def _watch_coordinator(self) -> None:
        if not self.is_coordinator:
            position = max(1, self.server_list.position(self.server_id))
            patience = self.rconfig.suspicion_timeout * position
            if self.clock.now() - self._last_heartbeat > patience:
                self._suspects_coordinator = True
                self._start_election()
            self.emit(StartTimer(TIMER_HB_WATCH, self.rconfig.heartbeat_interval))

    def _schedule_election_attempt(self) -> None:
        position = max(1, self.server_list.position(self.server_id))
        # position-scaled delay: the rightful successor moves first
        delay = self.rconfig.suspicion_timeout * 0.2 * position
        self.emit(StartTimer(TIMER_ELECTION, delay))

    def _coordinator_lost_server(self, server_id: str) -> None:
        """Coordinator-side handling of a dead replica."""
        if not self.server_list.remove(server_id):
            return
        self._hb_acks.pop(server_id, None)
        self._broadcast_server_list()
        for group, holders in self._interest.items():
            holders.discard(server_id)
        for group, holders in self._backups.items():
            holders.discard(server_id)
        # dead server's clients are gone: update membership and locks
        for group, members in list(self.global_members.items()):
            gone = [
                info for cid, info in members.items()
                if self.client_server.get(cid) == server_id
            ]
            if gone:
                self._coordinator_membership_change(
                    group, joined=(), left=tuple(gone)
                )
        self._ensure_backups()

    # ------------------------------------------------------------------
    # election (paper §4.2)
    # ------------------------------------------------------------------

    def _start_election(self) -> None:
        if self.is_coordinator or not self._suspects_coordinator:
            return
        dead_coord = self.coordinator_id
        self._candidate_epoch = self.epoch + 1
        self._voted_epochs.add(self._candidate_epoch)  # our vote is ours
        self._votes = {self.server_id}
        self._election_dead = set()
        request = ElectionRequest(self.server_id, self._candidate_epoch)
        for info in self.server_list.peers_of(self.server_id):
            if info.server_id == dead_coord:
                continue
            if not self._send_peer(info.server_id, request):
                # no link yet: dial; the request is re-sent on connect
                self._dial(info.server_id)
        self._maybe_win_election()

    def _on_election_request(self, conn: ConnId, msg: ElectionRequest) -> None:
        fresh = msg.epoch > self.epoch and msg.epoch not in self._voted_epochs
        senior_rival = (
            # same-epoch tie-break: defer to a candidate earlier in the
            # bring-up order (the paper's rightful successor)
            msg.epoch == self._candidate_epoch
            and self._candidate_epoch > self.epoch
            and 0 <= self.server_list.position(msg.candidate)
            < self.server_list.position(self.server_id)
        )
        granted = (
            (fresh or senior_rival)
            and self._suspects_coordinator
            and not self.is_coordinator
        )
        if granted:
            self._voted_epochs.add(msg.epoch)
            if senior_rival:
                self._candidate_epoch = 0  # abandon our own candidacy
        self.send(conn, ElectionReply(self.server_id, msg.epoch, granted))

    def _on_election_reply(self, conn: ConnId, msg: ElectionReply) -> None:
        if msg.epoch != self._candidate_epoch or not msg.granted:
            return
        self._votes.add(msg.voter)
        self._maybe_win_election()

    def _maybe_win_election(self) -> None:
        if self._candidate_epoch <= self.epoch:
            return
        # half+1 of the remaining servers (the dead coordinator and peers
        # found unreachable during this election excluded)
        remaining = [
            s for s in self.server_list.ids()
            if s != self.coordinator_id and s not in self._election_dead
        ]
        needed = len(remaining) // 2 + 1
        if len(self._votes) < needed:
            return
        old_coordinator = self.coordinator_id
        self.epoch = self._candidate_epoch
        self._candidate_epoch = 0
        if old_coordinator:
            self.server_list.remove(old_coordinator)
        # move self to the head (it may not have been position 1 if
        # intermediate servers also died)
        self_info = self.server_list.get(self.server_id) or self.rconfig.info
        self.server_list.remove(self.server_id)
        self.server_list.servers.insert(0, self_info)
        self.server_list.version += 1
        self._suspects_coordinator = False
        announce = CoordinatorAnnounce(
            self.server_id, self.epoch,
            tuple(self.server_list.servers), self.server_list.version,
        )
        for info in self.server_list.peers_of(self.server_id):
            self._dial(info.server_id)
            self._send_peer(info.server_id, announce)
        self.emit(StartTimer(TIMER_HB_SEND, self.rconfig.heartbeat_interval))
        # remember each group's tip: if this takeover turns out to be one
        # side of a partition, these are the last globally agreed seqnos
        for name, group in self.groups.items():
            self._takeover_base.setdefault(name, group.log.last_seqno)
        # every group this node already holds is now coordinator-held
        for name in self.groups:
            self._interest.setdefault(name, set())
            members = self.global_members.setdefault(name, {})
            for member in self.groups[name].members():
                members[member.client_id] = member.info()
                self.client_server[member.client_id] = self.server_id

    def _on_coordinator_announce(self, conn: ConnId, msg: CoordinatorAnnounce) -> None:
        if msg.epoch <= self.epoch and msg.coordinator_id != self.coordinator_id:
            return
        self.epoch = msg.epoch
        self.server_list.replace(msg.servers, msg.list_version)
        self._last_heartbeat = self.clock.now()
        self._suspects_coordinator = False
        self._candidate_epoch = 0
        self._dial(msg.coordinator_id)
        self._reregister_with_coordinator()

    def _reregister_with_coordinator(self) -> None:
        """(Re)declare groups, interest and members to the coordinator.

        A re-registering server may hold *stale* state (it restarted from
        its WAL, or rejoined after a coordinator change): it fetches the
        update suffix since its own tip for every installed group,
        buffering live broadcasts until the catch-up lands.
        """
        conn = self._coordinator_conn()
        if conn is None:
            return
        for name, created in self.known_groups.items():
            self.send(conn, created)
        for name, group in self.groups.items():
            self.send(
                conn,
                GroupInterest(self.server_id, name, True, len(group)),
            )
            members = tuple(m.info() for m in group.members())
            if members:
                self.send(conn, MemberUpdate(self.server_id, name, members, ()))
            if not self.is_coordinator and self.coordinator_id:
                self._fetching.add(name)
                self._buffered.setdefault(name, [])
                self._fetch_state(
                    name, from_server=self.coordinator_id,
                    purpose="catchup", since_seqno=group.log.last_seqno,
                )

    def _fail_pending_forwards(self) -> None:
        err = PartitionedError("coordinator unreachable; please retry")
        for pending in self._pending_forwards.values():
            self.send(
                pending.conn,
                ErrorReply(pending.request_id, err.code, str(err)),
            )
        self._pending_forwards.clear()

    # ------------------------------------------------------------------
    # forwarding plumbing (replica side)
    # ------------------------------------------------------------------

    def _forward(self, conn: ConnId, request_id: int, kind: str, build: Any) -> None:
        coord_conn = self._coordinator_conn()
        if coord_conn is None:
            raise PartitionedError("coordinator unreachable")
        forward_id = next(self._forward_ids)
        self._pending_forwards[forward_id] = _PendingForward(conn, request_id, kind)
        self.send(coord_conn, build(forward_id))

    def _on_forward_outcome(self, conn: ConnId, msg: ForwardOutcome) -> None:
        pending = self._pending_forwards.pop(msg.forward_id, None)
        if pending is None:
            return
        if msg.ok:
            if pending.kind == "acquire_lock":
                # granted immediately; code/detail carry (group, object_id)
                self.send(
                    pending.conn,
                    LockGranted(pending.request_id, msg.code, msg.detail),
                )
            else:
                self.send(pending.conn, Ack(pending.request_id))
        else:
            self.send(pending.conn, ErrorReply(pending.request_id, msg.code, msg.detail))

    # ------------------------------------------------------------------
    # group creation / deletion
    # ------------------------------------------------------------------

    def _on_create(self, conn: ConnId, msg: CreateGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.CREATE, msg.group)
        if msg.group in self.known_groups:
            raise GroupExistsError(f"group {msg.group!r} already exists")
        if self.is_coordinator:
            super()._on_create(conn, msg)
            self._register_created_group(
                msg.group, msg.persistent, msg.initial_state,
                self.groups[msg.group].created_at,
            )
            self._interest.setdefault(msg.group, set())
            self._broadcast_to_peers(self.known_groups[msg.group])
            self._ensure_backups()
        else:
            self._forward(
                conn, msg.request_id, "create",
                lambda fid: ForwardCreateGroup(
                    fid, self.server_id, msg.group, msg.persistent, msg.initial_state
                ),
            )

    def _register_created_group(
        self, name: GroupId, persistent: bool, initial: tuple, created_at: float
    ) -> None:
        self.known_groups[name] = GroupCreated(name, persistent, initial, created_at)
        self.global_members.setdefault(name, {})

    def _broadcast_to_peers(self, message: Message, only: set[str] | None = None) -> None:
        for info in self.server_list.peers_of(self.server_id):
            if only is not None and info.server_id not in only:
                continue
            self._send_peer(info.server_id, message)

    def _on_forward_create(self, conn: ConnId, msg: ForwardCreateGroup) -> None:
        if msg.group in self.known_groups:
            self.send(conn, ForwardOutcome(
                msg.forward_id, False, "corona.group_exists",
                f"group {msg.group!r} already exists",
            ))
            return
        group = Group(msg.group, msg.persistent, msg.initial_state, self.clock.now())
        self.groups[msg.group] = group
        if self._persists:
            meta = GroupMeta(msg.group, msg.persistent, msg.initial_state, group.created_at)
            self.emit(CreateGroupStorage(msg.group, frames.payload_of(meta)))
        self._register_created_group(
            msg.group, msg.persistent, msg.initial_state, group.created_at
        )
        self._interest.setdefault(msg.group, set())
        self._broadcast_to_peers(self.known_groups[msg.group])
        self.send(conn, ForwardOutcome(msg.forward_id, True))
        self._ensure_backups()

    def _on_group_created(self, conn: ConnId, msg: GroupCreated) -> None:
        if msg.group in self.known_groups:
            return
        self.known_groups[msg.group] = msg
        self.global_members.setdefault(msg.group, {})
        if self.is_coordinator and msg.group not in self.groups:
            # re-registration after failover: adopt and fetch the state
            group = Group(msg.group, msg.persistent, msg.initial_state, msg.created_at)
            self.groups[msg.group] = group
            self._interest.setdefault(msg.group, set())
            sender = self._conn_peer.get(conn)
            if sender is not None:
                self._fetch_state(msg.group, from_server=sender)

    def _on_delete(self, conn: ConnId, msg: DeleteGroupRequest) -> None:
        client = self._client_of(conn)
        self._authorize(client, GroupAction.DELETE, msg.group)
        if self.is_coordinator:
            if msg.group not in self.known_groups:
                raise NoSuchGroupError(f"no group named {msg.group!r}")
            self._drop_group_everywhere(msg.group)
            self.send(conn, Ack(msg.request_id))
        else:
            if msg.group not in self.known_groups:
                raise NoSuchGroupError(f"no group named {msg.group!r}")
            self._forward(
                conn, msg.request_id, "delete",
                lambda fid: ForwardDeleteGroup(fid, self.server_id, msg.group),
            )

    def _on_forward_delete(self, conn: ConnId, msg: ForwardDeleteGroup) -> None:
        if msg.group not in self.known_groups:
            self.send(conn, ForwardOutcome(
                msg.forward_id, False, "corona.no_such_group",
                f"no group named {msg.group!r}",
            ))
            return
        self._drop_group_everywhere(msg.group)
        self.send(conn, ForwardOutcome(msg.forward_id, True))

    def _drop_group_everywhere(self, name: GroupId) -> None:
        """Coordinator: delete a group cluster-wide."""
        self._broadcast_to_peers(GroupDropped(name))
        self._drop_group_locally(name)
        self._interest.pop(name, None)
        self._backups.pop(name, None)

    def _on_group_dropped(self, conn: ConnId, msg: GroupDropped) -> None:
        self._drop_group_locally(msg.group)
        self._backup_of.discard(msg.group)

    def _drop_group_locally(self, name: GroupId) -> None:
        self.known_groups.pop(name, None)
        self.global_members.pop(name, None)
        group = self.groups.get(name)
        if group is None:
            return
        notice = GroupDeletedNotice(name)
        for member in group.members():
            self._client_groups.get(member.client_id, set()).discard(name)
            self.send(member.conn, notice)
        self._drop_group(group)

    # ------------------------------------------------------------------
    # joins, interest, and state fetch
    # ------------------------------------------------------------------

    def _on_join(self, conn: ConnId, msg: JoinGroupRequest) -> None:
        if self.is_coordinator or msg.group in self.groups:
            super()._on_join(conn, msg)
            return
        if msg.group not in self.known_groups:
            raise NoSuchGroupError(f"no group named {msg.group!r}")
        # group exists cluster-wide but is not installed here: register
        # interest, fetch the state, park the join until it arrives
        self._pending_joins.setdefault(msg.group, []).append((conn, msg))
        if msg.group not in self._fetching:
            self._install_group_remotely(msg.group)

    def _install_group_remotely(self, name: GroupId) -> None:
        self._fetching.add(name)
        self._buffered.setdefault(name, [])
        coord_conn = self._coordinator_conn()
        if coord_conn is None:
            raise PartitionedError("coordinator unreachable")
        self.send(coord_conn, GroupInterest(self.server_id, name, True, 0))
        self._fetch_state(name, from_server=self.coordinator_id or "")

    def _fetch_state(
        self, name: GroupId, from_server: str, purpose: str = "install",
        since_seqno: int = -1,
    ) -> None:
        fetch_id = next(self._fetch_ids)
        self._fetch_groups[fetch_id] = name
        self._fetch_purpose[fetch_id] = purpose
        if purpose == "install":
            self._fetching.add(name)
            self._buffered.setdefault(name, [])
        request = StateFetchRequest(fetch_id, name, since_seqno)
        if not self._send_peer(from_server, request):
            self._dial(from_server)
            self._send_peer(from_server, request)

    def _on_state_fetch(self, conn: ConnId, msg: StateFetchRequest) -> None:
        group = self.groups.get(msg.group)
        if group is None:
            self.send(conn, StateFetchReply(msg.request_id, False, None))
            return
        if msg.since_seqno >= 0:
            spec = TransferSpec(TransferPolicy.SINCE_SEQNO, since_seqno=msg.since_seqno)
        else:
            spec = TransferSpec(TransferPolicy.FULL)
        snapshot = build_snapshot(group, spec)
        self.send(conn, StateFetchReply(msg.request_id, True, snapshot))

    def _on_state_fetch_reply(self, conn: ConnId, msg: StateFetchReply) -> None:
        name = self._fetch_groups.pop(msg.request_id, None)
        if name is None:
            return
        purpose = self._fetch_purpose.pop(msg.request_id, "install")
        if purpose == "catchup":
            self._finish_catchup(name, msg)
            return
        if purpose != "install":
            if msg.found and msg.snapshot is not None:
                self._rebase_group(name, msg.snapshot)
            if purpose == "reconcile":
                self._reconcile_done(name)
            return
        self._fetching.discard(name)
        if not msg.found or msg.snapshot is None:
            # the peer lost it too; fail parked joins
            for join_conn, join_msg in self._pending_joins.pop(name, []):
                err = NoSuchGroupError(f"group {name!r} state unavailable")
                self.send(join_conn, ErrorReply(join_msg.request_id, err.code, str(err)))
            return
        self._install_snapshot(name, msg.snapshot)
        if self.is_coordinator:
            # adopted after a takeover: the snapshot tip is the last seqno
            # this side agrees on — the reconciliation base if this
            # takeover turns out to be one half of a partition
            self._takeover_base.setdefault(name, self.groups[name].log.last_seqno)
        for join_conn, join_msg in self._pending_joins.pop(name, []):
            try:
                super()._on_join(join_conn, join_msg)
            except CoronaError as err:
                self.send(join_conn, ErrorReply(join_msg.request_id, err.code, str(err)))
        for fwd_conn, fwd_msg in self._parked_forwards.pop(name, []):
            self._on_forward_bcast(fwd_conn, fwd_msg)

    def _finish_catchup(self, name: GroupId, msg: StateFetchReply) -> None:
        """Apply the post-restart suffix, then drain buffered broadcasts."""
        self._fetching.discard(name)
        group = self.groups.get(name)
        if group is None:
            self._buffered.pop(name, None)
            return
        if msg.found and msg.snapshot is not None:
            snapshot = msg.snapshot
            if snapshot.objects or snapshot.base_seqno > group.log.last_seqno:
                # the suffix we asked for was reduced away: adopt wholesale
                self._rebase_group(name, snapshot)
            else:
                for record in snapshot.updates:
                    if record.seqno >= group.log.next_seqno:
                        self.apply_and_deliver(
                            group, record, DeliveryMode.INCLUSIVE, exclude_conn=None
                        )
        for buffered in self._buffered.pop(name, []):
            if buffered.update.seqno >= group.log.next_seqno:
                self._apply_sequenced(group, buffered)

    def _install_snapshot(self, name: GroupId, snapshot: StateSnapshot) -> None:
        created = self.known_groups.get(name)
        group = Group(
            name,
            created.persistent if created else True,
            created.initial_state if created else (),
            created.created_at if created else self.clock.now(),
        )
        group.state = _snapshot_state(snapshot)
        group.log.trim_to(snapshot.base_seqno)
        for record in snapshot.updates:
            group.log.append(record)
        group.sequencer.fast_forward(snapshot.next_seqno - 1)
        self.groups[name] = group
        self._persist_adopted_group(group)
        # drain updates sequenced while the fetch was in flight
        for buffered in self._buffered.pop(name, []):
            if buffered.update.seqno >= group.log.next_seqno:
                self._apply_sequenced(group, buffered)

    def _persist_adopted_group(self, group: Group) -> None:
        """Make a fetched/rebased group recoverable from this server's own
        stable storage: on-disk structures plus a checkpoint at the
        adopted tip (the preceding history is not locally replayable)."""
        if not self._persists:
            return
        meta = GroupMeta(
            group.name, group.persistent, group.initial_state, group.created_at
        )
        self.emit(CreateGroupStorage(group.name, frames.payload_of(meta)))
        tip = group.log.last_seqno
        if tip >= 0:
            full = build_snapshot(group, TransferSpec(TransferPolicy.FULL))
            self.emit(WriteCheckpointEffect(group.name, tip, frames.payload_of(full)))

    # ------------------------------------------------------------------
    # interest bookkeeping (coordinator)
    # ------------------------------------------------------------------

    def _on_group_interest(self, conn: ConnId, msg: GroupInterest) -> None:
        holders = self._interest.setdefault(msg.group, set())
        if msg.interested:
            holders.add(msg.server_id)
            # bring the newly interested server up to date on membership
            members = tuple(self.global_members.get(msg.group, {}).values())
            self.send(conn, GroupMembership(msg.group, (), (), members))
            if (
                self.is_coordinator
                and msg.group in self.known_groups
                and msg.group not in self.groups
                and msg.group not in self._fetching
            ):
                # a freshly promoted coordinator adopts state it lacks
                # from the server that declared it holds a copy
                created = self.known_groups[msg.group]
                self.groups[msg.group] = Group(
                    msg.group, created.persistent, created.initial_state,
                    created.created_at,
                )
                self._fetch_state(msg.group, from_server=msg.server_id)
        else:
            holders.discard(msg.server_id)
        self._ensure_backups()

    def _ensure_backups(self) -> None:
        """Hot standby (paper §4.1): at least two live copies per group.

        The coordinator always holds one copy; when no replica holds
        another, one is drafted as backup."""
        if not self.is_coordinator:
            return
        for name in list(self.known_groups):
            holders = self._interest.get(name, set()) | self._backups.get(name, set())
            holders = {h for h in holders if h in self.server_list}
            if holders:
                continue
            candidate = next(
                (
                    info.server_id
                    for info in self.server_list.peers_of(self.server_id)
                    if info.server_id in self._peer_conn
                ),
                None,
            )
            if candidate is not None:
                self._backups.setdefault(name, set()).add(candidate)
                self._send_peer(candidate, BackupAssign(name, candidate))

    # ------------------------------------------------------------------
    # multicast: forward, sequence, distribute
    # ------------------------------------------------------------------

    def _bcast(
        self,
        conn: ConnId,
        msg: BcastStateRequest | BcastUpdateRequest,
        kind: UpdateKind,
    ) -> None:
        if self.is_coordinator:
            super()._bcast(conn, msg, kind)
            return
        client = self._client_of(conn)
        self._authorize(client, GroupAction.BROADCAST, msg.group)
        group = self._group_named(msg.group)
        member = group.member(client)
        if member.role is MemberRole.OBSERVER:
            raise NotAuthorizedError(f"observer {client!r} cannot broadcast")
        self._forward(
            conn, msg.request_id, "bcast",
            lambda fid: ForwardBcast(
                fid, self.server_id, msg.group, kind, msg.object_id,
                msg.data, client, msg.mode, self.clock.now(),
            ),
        )

    def group_sequenced(self, runtime, record, mode, sender_conn) -> None:
        """Coordinator fast path: distribute a locally sequenced bcast."""
        self._distribute(
            runtime.name, record, mode, origin=self.server_id, forward_id=0
        )

    def _on_forward_bcast(self, conn: ConnId, msg: ForwardBcast) -> None:
        if msg.group in self._fetching:
            self._parked_forwards.setdefault(msg.group, []).append((conn, msg))
            return
        group = self.groups.get(msg.group)
        if group is None:
            self.send(conn, ForwardOutcome(
                msg.forward_id, False, "corona.no_such_group",
                f"no group named {msg.group!r}",
            ))
            return
        record = UpdateRecord(
            seqno=group.sequencer.allocate(),
            kind=msg.kind,
            object_id=msg.object_id,
            data=msg.data,
            sender=msg.sender,
            timestamp=self.clock.now(),
        )
        self.apply_and_deliver(group, record, msg.mode, exclude_conn=None)
        self._distribute(msg.group, record, msg.mode, origin=msg.origin,
                         forward_id=msg.forward_id)

    def _distribute(
        self,
        name: GroupId,
        record: UpdateRecord,
        mode: DeliveryMode,
        origin: str,
        forward_id: int,
    ) -> None:
        sequenced = SequencedBcast(name, record, origin, forward_id, mode)
        targets = self._interest.get(name, set()) | self._backups.get(name, set())
        conns = [
            self._peer_conn[server_id]
            for server_id in sorted(targets)
            if server_id != self.server_id and server_id in self._peer_conn
        ]
        if self.config.use_multicast and len(conns) > 1:
            # §4.1: "it is possible to use IP-multicast for broadcasting
            # messages among the servers"
            self.emit(SendMulticastEffect(tuple(conns), sequenced))
        else:
            for conn in conns:
                self.send(conn, sequenced)

    def _on_sequenced(self, conn: ConnId, msg: SequencedBcast) -> None:
        group = self.groups.get(msg.group)
        if group is None or msg.group in self._fetching:
            self._buffered.setdefault(msg.group, []).append(msg)
            self._ack_own_forward(msg)
            return
        self._apply_sequenced(group, msg)
        self._ack_own_forward(msg)

    def _apply_sequenced(self, group: Group, msg: SequencedBcast) -> None:
        self.apply_and_deliver(group, msg.update, msg.mode, exclude_conn=None)

    def _ack_own_forward(self, msg: SequencedBcast) -> None:
        if msg.origin != self.server_id:
            return
        pending = self._pending_forwards.pop(msg.forward_id, None)
        if pending is not None:
            self.send(pending.conn, Ack(pending.request_id))

    # ------------------------------------------------------------------
    # membership synchronization
    # ------------------------------------------------------------------

    def _notify_membership(self, group, joined, left) -> None:
        if self.is_coordinator:
            for info in joined:
                self.client_server[info.client_id] = self.server_id
            self._coordinator_membership_change(group.name, joined, left)
        else:
            conn = self._coordinator_conn()
            if conn is not None and (joined or left):
                self.send(conn, MemberUpdate(self.server_id, group.name, joined, left))

    def _on_member_update(self, conn: ConnId, msg: MemberUpdate) -> None:
        for info in msg.joined:
            self.client_server[info.client_id] = msg.server_id
        self._coordinator_membership_change(msg.group, msg.joined, msg.left)

    def _coordinator_membership_change(
        self,
        name: GroupId,
        joined: tuple[MemberInfo, ...],
        left: tuple[MemberInfo, ...],
    ) -> None:
        members = self.global_members.setdefault(name, {})
        for info in joined:
            members[info.client_id] = info
        for info in left:
            members.pop(info.client_id, None)
            # a departed member's locks are stripped globally
            group = self.groups.get(name)
            if group is not None:
                for grant in group.locks.release_all(info.client_id):
                    self._send_grant(group, grant)
        # push only the delta: each server maintains its own mirror of the
        # view (full snapshots travel only on interest registration), so
        # membership traffic stays O(1) per change rather than O(members)
        view = GroupMembership(name, joined, left, ())
        targets = self._interest.get(name, set()) | self._backups.get(name, set())
        for server_id in sorted(targets):
            if server_id != self.server_id:
                self._send_peer(server_id, view)
        self._notify_local_subscribers(name, joined, left, tuple(members.values()))
        created = self.known_groups.get(name)
        if created is not None and not created.persistent and not members:
            # transient group reached null membership cluster-wide
            self._drop_group_everywhere(name)

    def _on_group_membership(self, conn: ConnId, msg: GroupMembership) -> None:
        if msg.joined or msg.left:
            # incremental update to the mirrored view
            members = self.global_members.setdefault(msg.group, {})
            for info in msg.joined:
                members[info.client_id] = info
            for info in msg.left:
                members.pop(info.client_id, None)
        else:
            # full snapshot (sent when this server registered interest)
            members = {info.client_id: info for info in msg.members}
            self.global_members[msg.group] = members
        self._notify_local_subscribers(
            msg.group, msg.joined, msg.left, tuple(members.values())
        )

    def _notify_local_subscribers(
        self,
        name: GroupId,
        joined: tuple[MemberInfo, ...],
        left: tuple[MemberInfo, ...],
        members: tuple[MemberInfo, ...],
    ) -> None:
        group = self.groups.get(name)
        if group is None or (not joined and not left):
            return
        notice = MembershipNotice(name, joined, left, members)
        changed = {m.client_id for m in joined} | {m.client_id for m in left}
        for member in group.notice_subscribers():
            if member.client_id not in changed:
                self.send(member.conn, notice)

    def _membership_for_reply(self, group: Group) -> tuple[MemberInfo, ...]:
        merged = dict(self.global_members.get(group.name, {}))
        for member in group.members():
            merged[member.client_id] = member.info()
        return tuple(merged.values())

    def group_emptied(self, runtime) -> None:
        # the transient-death decision is global (the coordinator's), so
        # the base drop-when-empty behaviour is deliberately not invoked
        if self.is_coordinator:
            return
        if runtime.name not in self._backup_of:
            # no local members left: stop receiving this group's traffic
            conn = self._coordinator_conn()
            if conn is not None:
                self.send(conn, GroupInterest(self.server_id, runtime.name, False, 0))
            self.runtimes.pop(runtime.name, None)

    # ------------------------------------------------------------------
    # hot standby assignment (replica side)
    # ------------------------------------------------------------------

    def _on_backup_assign(self, conn: ConnId, msg: BackupAssign) -> None:
        self._backup_of.add(msg.group)
        if msg.group not in self.groups and msg.group not in self._fetching:
            self._fetch_state(msg.group, from_server=self.coordinator_id or "")
            coord = self._coordinator_conn()
            if coord is not None:
                self.send(coord, GroupInterest(self.server_id, msg.group, True, 0))

    # ------------------------------------------------------------------
    # locks (global table at the coordinator)
    # ------------------------------------------------------------------

    def _on_acquire_lock(self, conn: ConnId, msg: AcquireLockRequest) -> None:
        if self.is_coordinator:
            super()._on_acquire_lock(conn, msg)
            return
        client = self._client_of(conn)
        group = self._group_named(msg.group)
        group.member(client)
        self._forward(
            conn, msg.request_id, "acquire_lock",
            lambda fid: ForwardAcquireLock(
                fid, self.server_id, msg.group, msg.object_id,
                client, msg.request_id, msg.blocking,
            ),
        )

    def _on_forward_acquire(self, conn: ConnId, msg: ForwardAcquireLock) -> None:
        group = self.groups.get(msg.group)
        if group is None:
            self.send(conn, ForwardOutcome(
                msg.forward_id, False, "corona.no_such_group", msg.group
            ))
            return
        outcome = group.locks.acquire(msg.object_id, msg.client, msg.request_id, msg.blocking)
        if outcome is True:
            # code/detail carry (group, object) so the origin can build the
            # LockGranted reply
            self.send(conn, ForwardOutcome(msg.forward_id, True, msg.group, msg.object_id))
        elif outcome is False:
            err = LockHeldError(
                f"lock on {msg.object_id!r} held by {group.locks.holder(msg.object_id)!r}"
            )
            self.send(conn, ForwardOutcome(msg.forward_id, False, err.code, str(err)))
        else:
            self._remote_waiters[(msg.group, msg.object_id, msg.client)] = (
                msg.origin, msg.request_id,
            )
            self._pending_forwards.pop(msg.forward_id, None)

    def _on_release_lock(self, conn: ConnId, msg: ReleaseLockRequest) -> None:
        if self.is_coordinator:
            super()._on_release_lock(conn, msg)
            return
        client = self._client_of(conn)
        self._group_named(msg.group)
        self._forward(
            conn, msg.request_id, "release_lock",
            lambda fid: ForwardReleaseLock(
                fid, self.server_id, msg.group, msg.object_id, client
            ),
        )

    def _on_forward_release(self, conn: ConnId, msg: ForwardReleaseLock) -> None:
        group = self.groups.get(msg.group)
        if group is None:
            self.send(conn, ForwardOutcome(
                msg.forward_id, False, "corona.no_such_group", msg.group
            ))
            return
        try:
            grant = group.locks.release(msg.object_id, msg.client)
        except CoronaError as err:
            self.send(conn, ForwardOutcome(msg.forward_id, False, err.code, str(err)))
            return
        self.send(conn, ForwardOutcome(msg.forward_id, True))
        if grant is not None:
            self._send_grant(group, grant)

    def _send_grant(self, group: Group, grant) -> None:
        conn = self._client_conn.get(grant.client)
        if conn is not None:
            super()._send_grant(group, grant)
            return
        # the lucky client lives on another server
        waiter = self._remote_waiters.pop(
            (group.name, grant.object_id, grant.client), None
        )
        server_id = waiter[0] if waiter else self.client_server.get(grant.client)
        request_id = waiter[1] if waiter else grant.request_id
        if server_id:
            self._send_peer(
                server_id,
                RemoteLockGrant(group.name, grant.object_id, grant.client, request_id),
            )

    def _on_remote_grant(self, conn: ConnId, msg: RemoteLockGrant) -> None:
        client_conn = self._client_conn.get(msg.client)
        if client_conn is not None:
            self.send(client_conn, LockGranted(msg.request_id, msg.group, msg.object_id))

    # ------------------------------------------------------------------
    # log reduction (cluster-wide)
    # ------------------------------------------------------------------

    def _on_reduce_log(self, conn: ConnId, msg: ReduceLogRequest) -> None:
        if self.is_coordinator:
            super()._on_reduce_log(conn, msg)
            return
        client = self._client_of(conn)
        self._authorize(client, GroupAction.REDUCE, msg.group)
        self._group_named(msg.group)
        self._forward(
            conn, msg.request_id, "reduce",
            lambda fid: ForwardReduceLog(fid, self.server_id, msg.group),
        )

    def _on_forward_reduce(self, conn: ConnId, msg: ForwardReduceLog) -> None:
        group = self.groups.get(msg.group)
        if group is None:
            self.send(conn, ForwardOutcome(
                msg.forward_id, False, "corona.no_such_group", msg.group
            ))
            return
        self.reduce_group(group)
        self.send(conn, ForwardOutcome(msg.forward_id, True))

    def group_reduced(self, runtime, tip: int) -> None:
        if self.is_coordinator and tip >= 0:
            order = ReduceOrder(runtime.name, tip)
            targets = self._interest.get(runtime.name, set()) | self._backups.get(
                runtime.name, set()
            )
            for server_id in sorted(targets):
                if server_id != self.server_id:
                    self._send_peer(server_id, order)

    def _on_reduce_order(self, conn: ConnId, msg: ReduceOrder) -> None:
        runtime = self.runtimes.get(msg.group)
        if runtime is not None:
            # group_reduced fires here too, but a replica never relays
            runtime.reduce(upto=msg.seqno)

    # ------------------------------------------------------------------
    # partition reconciliation (paper §4.2)
    # ------------------------------------------------------------------

    @property
    def _branch_id(self) -> str:
        return f"{self.server_id}#e{self.epoch}"

    def initiate_reconciliation(self, senior: ServerInfo) -> None:
        """Reconcile this (junior) coordinator's branch with *senior*.

        Called after network connectivity is re-established.  For every
        group both sides know, the configured chooser decides ROLL_BACK /
        ADOPT_ONE / FORK; afterwards this node demotes to a replica of the
        senior coordinator and re-registers its groups and members.
        """
        if not self.is_coordinator:
            raise PartitionedError("only a coordinator can reconcile")
        self._reconcile_with = senior.server_id
        self._extra_peers[senior.server_id] = senior
        self._dial(senior.server_id)

    def _send_reconcile_offers(self, conn: ConnId) -> None:
        self._reconcile_outstanding = set(self.groups)
        if not self._reconcile_outstanding:
            self._complete_demotion()
            return
        for name, group in self.groups.items():
            self.send(conn, ReconcileOffer(
                group=name,
                branch_id=self._branch_id,
                checkpoint_seqno=group.log.first_seqno - 1,
                tip_seqno=group.log.last_seqno,
                partition_base=self._takeover_base.get(name, -2),
            ))

    def _offer_for(self, group: Group) -> ReconcileOffer:
        return ReconcileOffer(
            group=group.name,
            branch_id=self._branch_id,
            checkpoint_seqno=group.log.first_seqno - 1,
            tip_seqno=group.log.last_seqno,
            partition_base=self._takeover_base.get(group.name, -2),
        )

    def _on_reconcile_offer(self, conn: ConnId, msg: ReconcileOffer) -> None:
        """Senior side: decide the fate of one diverged group."""
        group = self.groups.get(msg.group)
        if group is None:
            # the group was born during the partition on the junior side;
            # the junior keeps it and re-registers it after demotion
            self.send(conn, ReconcileChoice(
                msg.group, ReconcilePolicy.ADOPT_ONE, msg.branch_id
            ))
            return
        mine = self._offer_for(group)
        policy, adopted = self.rconfig.reconcile_chooser(mine, msg)
        common = common_point(mine, msg)
        if policy is ReconcilePolicy.ROLL_BACK:
            if self._rollback_group(group, common):
                self._broadcast_rebase(group)
            else:
                # history needed for the rewind is gone; fall back
                policy, adopted = ReconcilePolicy.ADOPT_ONE, mine.branch_id
        if policy is ReconcilePolicy.ADOPT_ONE and adopted == msg.branch_id:
            # the junior branch wins: pull its state over this connection
            peer = self._conn_peer.get(conn, "")
            self._fetch_state(msg.group, from_server=peer, purpose="rebase")
        self.send(conn, ReconcileChoice(msg.group, policy, adopted, common))

    def _on_reconcile_choice(self, conn: ConnId, msg: ReconcileChoice) -> None:
        """Junior side: apply the senior's (application's) decision."""
        group = self.groups.get(msg.group)
        if group is None:
            self._reconcile_done(msg.group)
            return
        if msg.policy is ReconcilePolicy.ADOPT_ONE:
            if msg.adopted_branch == self._branch_id:
                self._reconcile_done(msg.group)  # our branch won: keep it
            else:
                peer = self._conn_peer.get(conn, "")
                self._fetch_state(msg.group, from_server=peer, purpose="reconcile")
        elif msg.policy is ReconcilePolicy.ROLL_BACK:
            if self._rollback_group(group, msg.common_seqno):
                self._broadcast_rebase(group)
                self._reconcile_done(msg.group)
            else:
                peer = self._conn_peer.get(conn, "")
                self._fetch_state(msg.group, from_server=peer, purpose="reconcile")
        elif msg.policy is ReconcilePolicy.FORK:
            self._fork_group(msg.group)
            self._reconcile_done(msg.group)

    def _reconcile_done(self, name: GroupId) -> None:
        self._reconcile_outstanding.discard(name)
        if not self._reconcile_outstanding and self._pending_demotion is not None:
            self._complete_demotion()

    def _complete_demotion(self) -> None:
        """Junior coordinator steps down and rejoins the senior's cluster."""
        pending = self._pending_demotion
        if pending is None:
            return
        self._pending_demotion = None
        senior_id = self._reconcile_with
        self._reconcile_with = None
        old_peers = [
            info for info in self.server_list.peers_of(self.server_id)
            if info.server_id != senior_id
        ]
        new_epoch = max(self.epoch, pending.epoch) + 1
        merged = list(pending.servers)
        merged_ids = {s.server_id for s in merged}
        if self.server_id not in merged_ids:
            merged.append(self.rconfig.info)
        for info in old_peers:
            if info.server_id not in merged_ids:
                merged.append(info)
        version = max(self.server_list.version, pending.list_version) + 1
        self.epoch = new_epoch
        self.server_list.servers = merged
        self.server_list.version = version
        self._takeover_base.clear()
        self._suspects_coordinator = False
        self._last_heartbeat = self.clock.now()
        # steer this side's replicas to the senior coordinator
        announce = CoordinatorAnnounce(
            pending.coordinator_id, new_epoch, tuple(merged), version
        )
        for info in old_peers:
            self._send_peer(info.server_id, announce)
        # tell the senior about the new epoch, then re-register everything
        if senior_id is not None:
            self._send_peer(senior_id, ServerHello(self.rconfig.info, new_epoch))
        self._reregister_with_coordinator()
        self.emit(StartTimer(TIMER_HB_WATCH, self.rconfig.heartbeat_interval))

    def _rollback_group(self, group: Group, seqno: int) -> bool:
        """Rewind a branch to *seqno*; False when history is unavailable."""
        if seqno < group.log.first_seqno - 1:
            return False
        result = rollback_state(group.state, seqno)
        if not result.ok:
            return False
        group.log.truncate_after(seqno)
        group.sequencer.next_seqno = seqno + 1
        return True

    def _broadcast_rebase(self, group: Group, exclude: set[str] = frozenset()) -> None:
        """Push a reconciled snapshot to this side's servers and clients."""
        snapshot = build_snapshot(group, TransferSpec(TransferPolicy.FULL))
        rebase = GroupRebase(group.name, snapshot)
        skip = set(exclude) | {self._reconcile_with}
        for info in self.server_list.peers_of(self.server_id):
            if info.server_id not in skip:
                self._send_peer(info.server_id, rebase)
        notice = RebaseNotice(group.name, snapshot)
        for member in group.members():
            self.send(member.conn, notice)

    def _rebase_group(
        self, name: GroupId, snapshot: StateSnapshot, from_peer: str | None = None
    ) -> None:
        """Replace a group's state in place, keeping local membership."""
        group = self.groups.get(name)
        if group is None:
            self._install_snapshot(name, snapshot)
            group = self.groups[name]
        else:
            group.state = state_from_snapshot(snapshot)
            log = StateLog()
            log.trim_to(snapshot.base_seqno)
            for record in snapshot.updates:
                log.append(record)
            group.log = log
            group.sequencer.next_seqno = snapshot.next_seqno
            self._persist_adopted_group(group)
        if self.is_coordinator or self._reconcile_with is not None:
            # a coordinator (or demoting junior) relays onwards — never
            # back to where the rebase came from, which would loop
            exclude = {from_peer} if from_peer else set()
            self._broadcast_rebase(group, exclude=exclude)
        else:
            notice = RebaseNotice(name, snapshot)
            for member in group.members():
                self.send(member.conn, notice)

    def _on_group_rebase(self, conn: ConnId, msg: GroupRebase) -> None:
        if msg.group in self.groups:
            self._rebase_group(msg.group, msg.snapshot, self._conn_peer.get(conn))

    def _fork_group(self, name: GroupId) -> None:
        """FORK outcome: this branch continues as a separate group."""
        new_name = f"{name}~{self._branch_id}"
        self._rename_group(name, new_name)
        for info in self.server_list.peers_of(self.server_id):
            if info.server_id != self._reconcile_with:
                self._send_peer(info.server_id, GroupForked(name, new_name))

    def _on_group_forked(self, conn: ConnId, msg: GroupForked) -> None:
        self._rename_group(msg.group, msg.new_name)

    def _rename_group(self, name: GroupId, new_name: GroupId) -> None:
        group = self.groups.pop(name, None)
        created = self.known_groups.pop(name, None)
        if created is not None:
            self.known_groups[new_name] = GroupCreated(
                new_name, created.persistent, created.initial_state,
                created.created_at,
            )
        members = self.global_members.pop(name, None)
        if members is not None:
            self.global_members[new_name] = members
        if name in self._interest:
            self._interest[new_name] = self._interest.pop(name)
        if name in self._backups:
            self._backups[new_name] = self._backups.pop(name)
        if group is None:
            return
        group.name = new_name
        self.groups[new_name] = group
        notice = ForkNotice(name, new_name)
        for member in group.members():
            groups = self._client_groups.get(member.client_id)
            if groups is not None and name in groups:
                groups.discard(name)
                groups.add(new_name)
            self.send(member.conn, notice)

    # ------------------------------------------------------------------
    # misc overrides
    # ------------------------------------------------------------------

    def _on_list_groups(self, conn: ConnId, msg: ListGroupsRequest) -> None:
        self._client_of(conn)
        infos = tuple(
            GroupInfo(
                created.group,
                created.persistent,
                len(self.global_members.get(created.group, {})),
                self.groups[created.group].log.next_seqno
                if created.group in self.groups
                else -1,
            )
            for created in self.known_groups.values()
        )
        self.send(conn, GroupListReply(msg.request_id, infos))


def _snapshot_state(snapshot: StateSnapshot):
    return state_from_snapshot(snapshot)
