"""Tests for the applications built on Corona (chat, whiteboard, viewer,
pub/sub), run over the in-memory transport."""

import asyncio

import pytest

from repro.apps.chat import ChatMessage, ChatRoom, decode_log, encode_message
from repro.apps.dataviewer import (
    InstrumentFeed,
    InstrumentViewer,
    Reading,
    decode_reading,
    encode_reading,
)
from repro.apps.pubsub import AsyncSubscriber, Item, Publisher, Subscriber
from repro.apps.whiteboard import (
    Stroke,
    Whiteboard,
    decode_canvas,
    encode_image,
    encode_stroke,
)
from repro.net.memory import MemoryNetwork
from repro.runtime import CoronaClient, CoronaServer


def run(coro):
    return asyncio.run(coro)


async def _world():
    net = MemoryNetwork()
    server = CoronaServer(transport=net)
    await server.start("corona", 0)
    return net, server


async def _client(net, name):
    return await CoronaClient.connect(("corona", 0), name, transport=net)


class TestChatCodec:
    def test_roundtrip(self):
        messages = [
            ChatMessage("alice", "hello there", 1.5),
            ChatMessage("bob", "", 2.0),
            ChatMessage("carol", "unicode ✓", 3.25),
        ]
        blob = b"".join(encode_message(m) for m in messages)
        assert list(decode_log(blob)) == messages

    def test_empty_log(self):
        assert list(decode_log(b"")) == []


class TestChatRoom:
    def test_chat_flow(self):
        async def main():
            net, server = await _world()
            alice = await _client(net, "alice")
            bob = await _client(net, "bob")
            room_a = ChatRoom(alice, "room")
            room_b = ChatRoom(bob, "room")
            await room_a.create()
            assert await room_a.join() == []
            await room_a.send("first!")
            backlog = await room_b.join(backlog=10)
            assert [m.text for m in backlog] == ["first!"]

            received = []
            done = asyncio.Event()
            room_b.on_message(lambda m: (received.append(m), done.set()))
            await room_a.send("second")
            await asyncio.wait_for(done.wait(), 2)
            assert received[0].author == "alice"
            assert received[0].text == "second"
            assert [m.text for m in room_b.history()] == ["first!", "second"]
            await alice.close(); await bob.close(); await server.stop()

        run(main())

    def test_backlog_limited(self):
        async def main():
            net, server = await _world()
            alice = await _client(net, "alice")
            room = ChatRoom(alice, "room")
            await room.create()
            await room.join()
            for i in range(6):
                await room.send(f"msg-{i}")
            late = await _client(net, "late")
            late_room = ChatRoom(late, "room")
            backlog = await late_room.join(backlog=2)
            assert [m.text for m in backlog] == ["msg-4", "msg-5"]
            await alice.close(); await late.close(); await server.stop()

        run(main())


class TestWhiteboardCodec:
    def test_stroke_roundtrip(self):
        stroke = Stroke("alice", "#ff0000", 3, ((0, 0), (10, -5), (20, 7)))
        items = list(decode_canvas(encode_stroke(stroke)))
        assert items == [stroke]

    def test_mixed_canvas(self):
        blob = encode_stroke(Stroke("a", "red", 1, ((1, 2),))) + encode_image(
            "photo.png", b"\x89PNG..."
        )
        items = list(decode_canvas(blob))
        assert isinstance(items[0], Stroke)
        assert items[1] == ("photo.png", b"\x89PNG...")

    def test_unknown_chunk_raises(self):
        with pytest.raises(ValueError):
            list(decode_canvas(b"\x63"))


class TestWhiteboard:
    def test_draw_and_clear(self):
        async def main():
            net, server = await _world()
            alice = await _client(net, "alice")
            bob = await _client(net, "bob")
            board_a = Whiteboard(alice, "board")
            board_b = Whiteboard(bob, "board")
            await board_a.create()
            await board_a.join()
            await board_b.join()

            stroke = Stroke("alice", "blue", 2, ((0, 0), (5, 5)))
            seen = asyncio.Event()
            board_b.on_stroke(lambda s: seen.set())
            await board_a.draw(stroke)
            await asyncio.wait_for(seen.wait(), 2)
            assert board_b.canvas() == [stroke]

            cleared = asyncio.Event()
            board_b.on_clear(lambda: cleared.set())
            await board_a.clear()
            await asyncio.wait_for(cleared.wait(), 2)
            assert board_b.canvas() == []
            await alice.close(); await bob.close(); await server.stop()

        run(main())

    def test_exclusive_drawing_uses_lock(self):
        async def main():
            net, server = await _world()
            alice = await _client(net, "alice")
            board = Whiteboard(alice, "board")
            await board.create()
            await board.join()
            await board.draw(Stroke("alice", "red", 1, ((0, 0),)), exclusive=True)
            assert len(board.canvas()) == 1
            await alice.close(); await server.stop()

        run(main())

    def test_late_joiner_sees_full_canvas(self):
        async def main():
            net, server = await _world()
            alice = await _client(net, "alice")
            board = Whiteboard(alice, "board")
            await board.create()
            await board.join()
            await board.draw(Stroke("alice", "red", 1, ((0, 0), (1, 1))))
            await board.import_image("map.png", b"pixels")
            late = await _client(net, "late")
            late_board = Whiteboard(late, "board")
            items = await late_board.join()
            assert len(items) == 2
            await alice.close(); await late.close(); await server.stop()

        run(main())


class TestDataViewer:
    def test_reading_roundtrip(self):
        reading = Reading("thermometer-1", -40.5, "degC", 123.0)
        assert decode_reading(encode_reading(reading)) == reading

    def test_latest_value_semantics(self):
        async def main():
            net, server = await _world()
            pub = await _client(net, "instrument-host")
            feed = InstrumentFeed(pub, "campaign")
            await feed.create()
            await feed.publish(Reading("radar", 1.0, "dB", 1.0))
            await feed.publish(Reading("radar", 2.0, "dB", 2.0))
            await feed.publish(Reading("lidar", 9.0, "km", 2.0))

            viewer_client = await _client(net, "scientist")
            viewer = InstrumentViewer(viewer_client, "campaign")
            current = await viewer.join()
            # bcastState overrides: only the latest radar value survives
            assert current["radar"].value == 2.0
            assert current["lidar"].value == 9.0

            seen = []
            done = asyncio.Event()
            viewer.on_reading(lambda r: (seen.append(r), done.set()))
            await feed.publish(Reading("radar", 3.0, "dB", 3.0))
            await asyncio.wait_for(done.wait(), 2)
            assert viewer.current("radar").value == 3.0
            await pub.close(); await viewer_client.close(); await server.stop()

        run(main())

    def test_selected_instruments_only(self):
        async def main():
            net, server = await _world()
            pub = await _client(net, "instrument-host")
            feed = InstrumentFeed(pub, "campaign")
            await feed.create()
            await feed.publish(Reading("radar", 1.0, "dB", 1.0))
            await feed.publish(Reading("lidar", 2.0, "km", 1.0))
            viewer_client = await _client(net, "scientist")
            viewer = InstrumentViewer(viewer_client, "campaign")
            current = await viewer.join(instruments=("radar",))
            assert set(current) == {"radar"}
            await pub.close(); await viewer_client.close(); await server.stop()

        run(main())


class TestPubSub:
    def test_push_to_permanent_subscriber(self):
        async def main():
            net, server = await _world()
            pub_client = await _client(net, "pub")
            sub_client = await _client(net, "sub")
            publisher = Publisher(pub_client, "news")
            await publisher.create_topic()
            await publisher.attach()
            subscriber = Subscriber(sub_client, "news")
            assert await subscriber.subscribe() == []

            inbox = []
            done = asyncio.Event()
            subscriber.on_item(lambda item: (inbox.append(item), done.set()))
            await publisher.publish("k1", b"breaking")
            await asyncio.wait_for(done.wait(), 2)
            assert inbox == [Item("pub", "k1", b"breaking")]
            await pub_client.close(); await sub_client.close(); await server.stop()

        run(main())

    def test_async_subscriber_pulls_backlog(self):
        async def main():
            net, server = await _world()
            pub_client = await _client(net, "pub")
            publisher = Publisher(pub_client, "news")
            await publisher.create_topic()
            await publisher.attach()
            for i in range(3):
                await publisher.publish(f"k{i}", b"%d" % i)

            # the subscriber was never connected while items were
            # published — the *service* holds them (the Corona point)
            poll_client = await _client(net, "poller")
            poller = AsyncSubscriber(poll_client, "news")
            first = await poller.poll()
            assert [item.key for item in first] == ["k0", "k1", "k2"]

            assert await poller.poll() == []  # nothing new

            await publisher.publish("k3", b"3")
            second = await poller.poll()
            assert [item.key for item in second] == ["k3"]
            await pub_client.close(); await poll_client.close(); await server.stop()

        run(main())

    def test_poll_after_reduction_skips_trimmed_history(self):
        """Documented behaviour: when the service reduced the log past a
        poller's cursor, the trimmed increments cannot be attributed to
        'new since last poll' — the poll returns nothing but the cursor
        advances, and subsequent items flow normally."""
        async def main():
            net, server = await _world()
            pub_client = await _client(net, "pub")
            publisher = Publisher(pub_client, "news")
            await publisher.create_topic()
            await publisher.attach()
            poll_client = await _client(net, "poller")
            poller = AsyncSubscriber(poll_client, "news")
            await publisher.publish("k0", b"0")
            assert [i.key for i in await poller.poll()] == ["k0"]
            await publisher.publish("k1", b"1")
            await pub_client.reduce_log("news")  # trims k1's record
            stale = await poller.poll()
            assert stale == []  # k1's increment was reduced away
            await publisher.publish("k2", b"2")
            assert [i.key for i in await poller.poll()] == ["k2"]
            await pub_client.close(); await poll_client.close(); await server.stop()

        run(main())

    def test_subscriber_backlog_via_full_transfer(self):
        async def main():
            net, server = await _world()
            pub_client = await _client(net, "pub")
            publisher = Publisher(pub_client, "news")
            await publisher.create_topic()
            await publisher.attach()
            await publisher.publish("old", b"x")
            sub_client = await _client(net, "sub")
            subscriber = Subscriber(sub_client, "news")
            backlog = await subscriber.subscribe(backlog=True)
            assert [item.key for item in backlog] == ["old"]
            await pub_client.close(); await sub_client.close(); await server.stop()

        run(main())
