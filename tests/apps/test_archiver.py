"""Tests for application-level history archiving (paper §6)."""

import asyncio

import pytest

from repro.apps.archiver import GroupArchiver
from repro.net.memory import MemoryNetwork
from repro.runtime import CoronaClient, CoronaServer


def run(coro):
    return asyncio.run(coro)


async def _world():
    net = MemoryNetwork()
    server = CoronaServer(transport=net)
    await server.start("corona", 0)
    return net, server


class TestArchiver:
    def test_reduce_every_must_be_positive(self):
        with pytest.raises(ValueError):
            GroupArchiver(_FakeClient(), "g", reduce_every=0)

    def test_archives_and_reduces(self):
        async def main():
            net, server = await _world()
            writer = await CoronaClient.connect(("corona", 0), "writer", transport=net)
            keeper = await CoronaClient.connect(("corona", 0), "keeper", transport=net)
            await writer.create_group("g", persistent=True)
            await writer.join_group("g")
            archiver = GroupArchiver(keeper, "g", reduce_every=10)
            await archiver.start()

            for i in range(25):
                await writer.bcast_update("g", "doc", b"entry-%02d;" % i)
                await archiver.maybe_reduce()
            await asyncio.sleep(0.1)
            await archiver.maybe_reduce()

            stats = archiver.stats()
            assert stats.records_archived >= 20
            assert stats.reductions_triggered >= 2
            assert stats.compression_ratio > 1.5  # repetitive entries shrink

            # the *service* log was trimmed...
            group = server.core.groups["g"]
            assert len(group.log) < 25
            # ...yet the folded state is intact for new joiners
            late = await CoronaClient.connect(("corona", 0), "late", transport=net)
            view = await late.join_group("g")
            assert view.state.get("doc").materialized() == b"".join(
                b"entry-%02d;" % i for i in range(25)
            )
            # ...and the archiver can reproduce the full record history
            history = archiver.history()
            assert [r.data for r in history] == [b"entry-%02d;" % i for i in range(25)]
            assert [r.seqno for r in history] == list(range(25))

            for client in (writer, keeper, late):
                await client.close()
            await server.stop()

        run(main())

    def test_history_includes_open_batch(self):
        async def main():
            net, server = await _world()
            writer = await CoronaClient.connect(("corona", 0), "writer", transport=net)
            keeper = await CoronaClient.connect(("corona", 0), "keeper", transport=net)
            await writer.create_group("g", persistent=True)
            await writer.join_group("g")
            archiver = GroupArchiver(keeper, "g", reduce_every=100)
            await archiver.start()
            await writer.bcast_update("g", "o", b"only-one")
            await asyncio.sleep(0.1)
            assert [r.data for r in archiver.history()] == [b"only-one"]
            assert not await archiver.maybe_reduce()  # batch still open
            await writer.close(); await keeper.close(); await server.stop()

        run(main())


class _FakeClient:
    def on_event(self, kind, callback):
        pass
