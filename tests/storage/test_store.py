"""Tests for GroupStore: lifecycle, logging, checkpoints, recovery."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.errors import StorageError
from repro.storage.store import GroupStore
from repro.storage.wal import FsyncPolicy


@pytest.fixture
def store(tmp_path):
    with GroupStore(tmp_path / "data") as s:
        yield s


class TestLifecycle:
    def test_create_and_list(self, store):
        store.create_group("alpha", b"meta-a")
        store.create_group("beta")
        assert store.list_groups() == ["alpha", "beta"]

    def test_create_duplicate_raises(self, store):
        store.create_group("g")
        with pytest.raises(StorageError):
            store.create_group("g")

    def test_delete_removes_everything(self, store):
        store.create_group("g")
        store.append("g", 0, b"rec")
        store.delete_group("g")
        assert not store.has_group("g")
        assert store.list_groups() == []

    def test_delete_missing_group_is_noop(self, store):
        store.delete_group("never-existed")

    def test_group_names_with_odd_characters(self, store):
        weird = "proj/atmos re:search #42"
        store.create_group(weird, b"m")
        assert store.list_groups() == [weird]
        store.append(weird, 0, b"rec")
        recovered = store.recover(weird)
        assert recovered.records == [(0, b"rec")]

    def test_meta_roundtrip(self, store):
        store.create_group("g", b"\x01persistent")
        assert store.recover("g").meta == b"\x01persistent"

    def test_update_meta(self, store):
        store.create_group("g", b"v1")
        store.update_meta("g", b"v2")
        assert store.recover("g").meta == b"v2"

    def test_append_to_missing_group_raises(self, store):
        with pytest.raises(StorageError):
            store.append("ghost", 0, b"x")


class TestRecovery:
    def test_records_recovered_in_order(self, store):
        store.create_group("g")
        for seqno in range(5):
            store.append("g", seqno, f"rec-{seqno}".encode())
        store.flush("g")
        recovered = store.recover("g")
        assert recovered.checkpoint_seqno == -1
        assert recovered.records == [(i, f"rec-{i}".encode()) for i in range(5)]
        assert recovered.last_seqno == 4

    def test_recovery_after_reopen(self, tmp_path):
        with GroupStore(tmp_path / "d") as store:
            store.create_group("g", b"m")
            store.append("g", 0, b"a")
            store.append("g", 1, b"b")
        with GroupStore(tmp_path / "d") as store:
            recovered = store.recover("g")
            assert recovered.records == [(0, b"a"), (1, b"b")]
            # appending continues after recovery
            store.append("g", 2, b"c")
            assert store.recover("g").records == [(0, b"a"), (1, b"b"), (2, b"c")]

    def test_checkpoint_trims_wal(self, store):
        store.create_group("g")
        for seqno in range(4):
            store.append("g", seqno, b"r%d" % seqno)
        store.checkpoint("g", 3, b"snapshot@3")
        store.append("g", 4, b"r4")
        recovered = store.recover("g")
        assert recovered.checkpoint_seqno == 3
        assert recovered.snapshot == b"snapshot@3"
        assert recovered.records == [(4, b"r4")]

    def test_checkpoint_deletes_old_segments(self, store):
        store.create_group("g")
        store.append("g", 0, b"r0")
        store.checkpoint("g", 0, b"s0")
        store.append("g", 1, b"r1")
        store.checkpoint("g", 1, b"s1")
        segments = [p.name for p in (store.root / "g").iterdir() if "wal" in p.name]
        assert segments == ["wal.2.log"]

    def test_records_below_checkpoint_filtered(self, tmp_path):
        # simulate a crash between checkpoint write and WAL rotation by
        # writing records, checkpointing, then recovering from scratch
        with GroupStore(tmp_path / "d") as store:
            store.create_group("g")
            for seqno in range(3):
                store.append("g", seqno, b"x")
            store.checkpoint("g", 2, b"snap")
        with GroupStore(tmp_path / "d") as store:
            recovered = store.recover("g")
            assert recovered.records == []
            assert recovered.last_seqno == 2

    def test_recover_missing_group_raises(self, store):
        with pytest.raises(StorageError):
            store.recover("ghost")

    def test_recover_all(self, store):
        store.create_group("a")
        store.create_group("b")
        store.append("a", 0, b"x")
        store.flush()
        result = store.recover_all()
        assert set(result) == {"a", "b"}
        assert result["a"].records == [(0, b"x")]
        assert result["b"].records == []

    def test_duplicate_seqnos_deduplicated(self, store):
        # a retransmitted record after recovery must not double-apply
        store.create_group("g")
        store.append("g", 0, b"first-write")
        store.append("g", 0, b"rewrite")
        recovered = store.recover("g")
        assert recovered.records == [(0, b"rewrite")]

    @settings(max_examples=25, deadline=None)
    @given(
        n_records=st.integers(0, 20),
        ckpt_at=st.integers(-1, 20),
    )
    def test_checkpoint_recovery_property(self, tmp_path_factory, n_records, ckpt_at):
        """checkpoint + suffix replay always reconstructs seqnos 0..n-1."""
        root = tmp_path_factory.mktemp("gs")
        with GroupStore(root) as store:
            store.create_group("g")
            for seqno in range(n_records):
                store.append("g", seqno, bytes([seqno]))
                if seqno == ckpt_at:
                    store.checkpoint("g", seqno, b"snap-%d" % seqno)
        with GroupStore(root) as store:
            recovered = store.recover("g")
            expected_ckpt = ckpt_at if 0 <= ckpt_at < n_records else -1
            assert recovered.checkpoint_seqno == expected_ckpt
            assert [s for s, _ in recovered.records] == list(
                range(expected_ckpt + 1, n_records)
            )


class TestFsyncPolicies:
    @pytest.mark.parametrize("policy", list(FsyncPolicy))
    def test_roundtrip_under_policy(self, tmp_path, policy):
        with GroupStore(tmp_path / "d", fsync=policy) as store:
            store.create_group("g")
            store.append("g", 0, b"rec")
            store.flush()
        with GroupStore(tmp_path / "d", fsync=policy) as store:
            assert store.recover("g").records == [(0, b"rec")]
