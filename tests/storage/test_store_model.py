"""Model-based property test: GroupStore under appends, checkpoints, and
process restarts.

The model is a plain dict of seqno->payload plus the checkpoint floor;
after any operation sequence — including reopening the store from disk,
which is what a crash-and-restart amounts to for a flushed log — recovery
must reconstruct exactly the model's view."""

import shutil
import tempfile
from pathlib import Path

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.storage.store import GroupStore


class GroupStoreMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.root = Path(tempfile.mkdtemp(prefix="gs-model-"))
        self.store = GroupStore(self.root)
        self.store.create_group("g", b"meta")
        # the model
        self.records: dict[int, bytes] = {}
        self.ckpt_seqno = -1
        self.snapshot: bytes | None = None
        self.next_seqno = 0

    def teardown(self):
        self.store.close()
        shutil.rmtree(self.root, ignore_errors=True)

    @rule(payload=st.binary(min_size=1, max_size=32))
    def append(self, payload):
        self.store.append("g", self.next_seqno, payload)
        self.records[self.next_seqno] = payload
        self.next_seqno += 1

    @rule()
    def checkpoint(self):
        if self.next_seqno == 0:
            return
        seqno = self.next_seqno - 1
        snapshot = b"snap@%d" % seqno
        self.store.checkpoint("g", seqno, snapshot)
        self.ckpt_seqno = seqno
        self.snapshot = snapshot
        self.records = {s: p for s, p in self.records.items() if s > seqno}

    @rule()
    def reopen(self):
        """Process restart: close every handle, open the directory anew."""
        self.store.close()
        self.store = GroupStore(self.root)

    @invariant()
    def recovery_matches_model(self):
        recovered = self.store.recover("g")
        assert recovered.meta == b"meta"
        assert recovered.checkpoint_seqno == self.ckpt_seqno
        assert recovered.snapshot == self.snapshot
        assert dict(recovered.records) == self.records
        expected_last = max(
            [self.ckpt_seqno, *self.records.keys()], default=-1
        )
        assert recovered.last_seqno == expected_last


TestGroupStoreModel = GroupStoreMachine.TestCase
TestGroupStoreModel.settings = settings(
    max_examples=40, stateful_step_count=25, deadline=None
)
