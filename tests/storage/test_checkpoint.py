"""Tests for the checkpoint store: atomicity, pruning, damage fallback."""

import pytest

from repro.core.errors import StorageError
from repro.storage.checkpoint import CheckpointStore


@pytest.fixture
def store(tmp_path):
    return CheckpointStore(tmp_path / "g")


class TestSaveLoad:
    def test_empty_store_has_no_checkpoint(self, store):
        assert store.load_latest() is None
        assert store.seqnos() == []

    def test_save_then_load(self, store):
        store.save(10, b"snapshot-bytes")
        assert store.load_latest() == (10, b"snapshot-bytes")

    def test_latest_wins(self, store):
        store.save(10, b"old")
        store.save(20, b"new")
        assert store.load_latest() == (20, b"new")

    def test_empty_snapshot_is_valid(self, store):
        store.save(0, b"")
        assert store.load_latest() == (0, b"")

    def test_negative_seqno_rejected(self, store):
        with pytest.raises(StorageError):
            store.save(-1, b"x")

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError):
            CheckpointStore(tmp_path, keep=0)


class TestPruning:
    def test_old_checkpoints_pruned(self, store):
        for seqno in (1, 2, 3, 4):
            store.save(seqno, bytes([seqno]))
        assert store.seqnos() == [3, 4]

    def test_keep_parameter_respected(self, tmp_path):
        store = CheckpointStore(tmp_path, keep=3)
        for seqno in range(5):
            store.save(seqno, b"s")
        assert store.seqnos() == [2, 3, 4]


class TestDamage:
    def test_corrupt_latest_falls_back(self, store):
        store.save(10, b"good-old")
        path = store.save(20, b"good-new")
        data = bytearray(path.read_bytes())
        data[-1] ^= 0xFF
        path.write_bytes(bytes(data))
        assert store.load_latest() == (10, b"good-old")

    def test_truncated_checkpoint_skipped(self, store):
        store.save(10, b"good")
        path = store.save(20, b"will-truncate")
        path.write_bytes(path.read_bytes()[:4])
        assert store.load_latest() == (10, b"good")

    def test_all_damaged_returns_none(self, store):
        path = store.save(5, b"only")
        path.write_bytes(b"")
        assert store.load_latest() is None

    def test_tmp_files_ignored(self, store):
        store.save(5, b"real")
        (store.directory / ".ckpt.9.tmp").write_bytes(b"partial")
        assert store.load_latest() == (5, b"real")
        assert store.seqnos() == [5]

    def test_seqno_mismatch_in_header_skipped(self, store):
        # a checkpoint renamed to the wrong seqno must not be trusted
        store.save(10, b"good")
        src = store.directory / "ckpt.10.bin"
        (store.directory / "ckpt.99.bin").write_bytes(src.read_bytes())
        assert store.load_latest() == (10, b"good")
