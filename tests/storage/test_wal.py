"""Tests for the write-ahead log: append, replay, torn tails, corruption."""

import struct

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import CorruptLogError, StorageError
from repro.storage.wal import FsyncPolicy, WriteAheadLog, read_log_records


@pytest.fixture
def log_path(tmp_path):
    return tmp_path / "group" / "wal.0.log"


def _write(path, records, fsync=FsyncPolicy.NEVER):
    with WriteAheadLog(path, fsync=fsync) as log:
        for rec in records:
            log.append(rec)


class TestAppendReplay:
    def test_empty_log_yields_nothing(self, log_path):
        WriteAheadLog(log_path).close()
        assert list(read_log_records(log_path)) == []

    def test_missing_file_yields_nothing(self, tmp_path):
        assert list(read_log_records(tmp_path / "absent.log")) == []

    def test_roundtrip_order_preserved(self, log_path):
        records = [b"first", b"", b"third" * 100]
        _write(log_path, records)
        assert list(read_log_records(log_path)) == records

    def test_reopen_appends_after_existing(self, log_path):
        _write(log_path, [b"a"])
        _write(log_path, [b"b"])
        assert list(read_log_records(log_path)) == [b"a", b"b"]

    def test_appended_counter(self, log_path):
        log = WriteAheadLog(log_path)
        log.append(b"x")
        log.append(b"y")
        assert log.appended == 2
        log.close()

    def test_append_after_close_raises(self, log_path):
        log = WriteAheadLog(log_path)
        log.close()
        with pytest.raises(StorageError):
            log.append(b"z")

    def test_flush_after_close_is_noop(self, log_path):
        log = WriteAheadLog(log_path)
        log.close()
        log.flush()  # must not raise

    @pytest.mark.parametrize("policy", list(FsyncPolicy))
    def test_all_fsync_policies_roundtrip(self, log_path, policy):
        _write(log_path, [b"rec1", b"rec2"], fsync=policy)
        assert list(read_log_records(log_path)) == [b"rec1", b"rec2"]

    @given(st.lists(st.binary(max_size=64), max_size=30))
    def test_roundtrip_property(self, tmp_path_factory, records):
        path = tmp_path_factory.mktemp("wal") / "w.log"
        _write(path, records)
        assert list(read_log_records(path)) == records


class TestCrashDamage:
    def test_torn_header_truncated(self, log_path):
        _write(log_path, [b"good"])
        with open(log_path, "ab") as fh:
            fh.write(b"\x00\x00")  # half a header
        assert list(read_log_records(log_path)) == [b"good"]
        # repair actually shrank the file: a second replay sees a clean log
        assert list(read_log_records(log_path, repair=False)) == [b"good"]

    def test_torn_payload_truncated(self, log_path):
        _write(log_path, [b"good"])
        with open(log_path, "ab") as fh:
            fh.write(struct.pack(">II", 100, 0) + b"short")
        assert list(read_log_records(log_path)) == [b"good"]

    def test_corrupt_tail_record_truncated(self, log_path):
        _write(log_path, [b"good", b"tail-record"])
        data = bytearray(log_path.read_bytes())
        data[-1] ^= 0xFF  # flip a bit in the final payload byte
        log_path.write_bytes(bytes(data))
        assert list(read_log_records(log_path)) == [b"good"]

    def test_mid_log_corruption_raises(self, log_path):
        _write(log_path, [b"first-record", b"second-record"])
        data = bytearray(log_path.read_bytes())
        data[10] ^= 0xFF  # damage inside the first record's payload
        log_path.write_bytes(bytes(data))
        with pytest.raises(CorruptLogError):
            list(read_log_records(log_path))

    def test_no_repair_raises_on_torn_tail(self, log_path):
        _write(log_path, [b"good"])
        with open(log_path, "ab") as fh:
            fh.write(b"\x01")
        with pytest.raises(CorruptLogError):
            list(read_log_records(log_path, repair=False))

    def test_repair_keeps_full_prefix(self, log_path):
        records = [bytes([i]) * 10 for i in range(8)]
        _write(log_path, records)
        with open(log_path, "ab") as fh:
            fh.write(struct.pack(">II", 5, 12345))  # header, payload missing
        assert list(read_log_records(log_path)) == records


class TestGroupCommit:
    """append_many: one write + one flush for the whole batch."""

    def test_batch_layout_matches_sequential_appends(self, tmp_path):
        records = [b"first", b"", b"third" * 100, bytes(range(7))]
        one_by_one = tmp_path / "seq" / "wal.0.log"
        batched = tmp_path / "batch" / "wal.0.log"
        _write(one_by_one, records)
        with WriteAheadLog(batched) as log:
            log.append_many(records)
        assert batched.read_bytes() == one_by_one.read_bytes()
        assert list(read_log_records(batched)) == records

    def test_batch_counts_every_record(self, log_path):
        with WriteAheadLog(log_path) as log:
            log.append_many([b"a", b"b", b"c"])
            assert log.appended == 3

    @pytest.mark.parametrize("policy", [FsyncPolicy.ON_FLUSH, FsyncPolicy.ALWAYS])
    def test_one_fsync_per_batch(self, log_path, monkeypatch, policy):
        import repro.storage.wal as wal_module

        syncs = []
        real_fsync = wal_module.os.fsync
        monkeypatch.setattr(
            wal_module.os, "fsync", lambda fd: (syncs.append(fd), real_fsync(fd))
        )
        with WriteAheadLog(log_path, fsync=policy) as log:
            log.append_many([b"a", b"b", b"c", b"d"])
            assert len(syncs) == 1, "group commit must fsync once per batch"
        # sequential appends under ALWAYS pay one fsync per record
        syncs.clear()
        seq_path = log_path.parent / "wal.seq.log"
        with WriteAheadLog(seq_path, fsync=FsyncPolicy.ALWAYS) as log:
            for rec in [b"a", b"b", b"c", b"d"]:
                log.append(rec)
            assert len(syncs) == 4

    def test_empty_batch_is_noop(self, log_path):
        with WriteAheadLog(log_path, fsync=FsyncPolicy.ALWAYS) as log:
            log.append_many([])
            assert log.appended == 0
        assert list(read_log_records(log_path)) == []

    def test_batch_after_close_raises(self, log_path):
        log = WriteAheadLog(log_path)
        log.close()
        with pytest.raises(StorageError):
            log.append_many([b"z"])
