"""Scenario tests for the replicated Corona service (paper §4).

Every test runs real `ReplicatedServerCore`s over the simulated network:
a coordinator (srv-0) plus replicas, with clients attached to different
servers.
"""

import pytest

from repro.sim.harness import CoronaWorld
from repro.wire.messages import DeliveryMode, ObjectState, TransferPolicy, TransferSpec


@pytest.fixture
def world():
    return CoronaWorld()


def _cluster(world, n=3, **kwargs):
    kwargs.setdefault("heartbeat_interval", 0.5)
    kwargs.setdefault("suspicion_timeout", 1.0)
    cluster = world.add_replicated_cluster(n, **kwargs)
    world.run_for(1.0)
    return cluster


def _collab(world, cluster):
    """Alice on srv-1, Bob on srv-2, both in persistent group 'room'."""
    alice = world.add_client(client_id="alice", server="srv-1")
    bob = world.add_client(client_id="bob", server="srv-2")
    world.run_for(0.5)
    alice.call("create_group", "room", True)
    world.run_for(0.5)
    alice.call("join_group", "room", notify_membership=True)
    world.run_for(0.5)
    bob.call("join_group", "room", notify_membership=True)
    world.run_for(0.5)
    return alice, bob


class TestClusterFormation:
    def test_all_servers_learn_the_list(self, world):
        cluster = _cluster(world, n=4)
        for server in cluster:
            assert server.core.server_list.ids() == ["srv-0", "srv-1", "srv-2", "srv-3"]
        assert cluster[0].core.is_coordinator
        assert not any(s.core.is_coordinator for s in cluster[1:])

    def test_heartbeats_flow(self, world):
        cluster = _cluster(world, n=3)
        world.run_for(3.0)
        coordinator = cluster[0].core
        assert set(coordinator._hb_acks) == {"srv-1", "srv-2"}


class TestCrossServerCollaboration:
    def test_create_on_replica_visible_everywhere(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        for server in cluster:
            assert "room" in server.core.known_groups

    def test_duplicate_create_rejected_across_servers(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        again = bob.call("create_group", "room")
        world.run_for(0.5)
        assert not again.ok
        assert again.error.code == "corona.group_exists"

    def test_bcast_crosses_servers_with_state(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        alice.call("bcast_update", "room", "doc", b"from-alice;")
        bob.call("bcast_update", "room", "doc", b"from-bob;")
        world.run_for(1.0)
        views = {
            c.core.views["room"].state.get("doc").materialized()
            for c in (alice, bob)
        }
        assert len(views) == 1  # identical replicas
        # the coordinator holds the state too (it sequences everything)
        coord_group = cluster[0].core.groups["room"]
        assert coord_group.state.get("doc").materialized() in views

    def test_total_order_across_servers(self, world):
        cluster = _cluster(world)
        clients = [
            world.add_client(client_id=f"c{i}", server=f"srv-{i % 3}")
            for i in range(3)
        ]
        world.run_for(0.5)
        clients[0].call("create_group", "g", True)
        world.run_for(0.5)
        for client in clients:
            client.call("join_group", "g")
        world.run_for(0.5)
        for i, client in enumerate(clients):
            for j in range(4):
                client.call("bcast_update", "g", "o", f"{i}.{j};".encode())
        world.run_for(2.0)
        streams = [[d.record.seqno for _t, d in c.deliveries] for c in clients]
        assert all(len(s) == 12 for s in streams)
        assert streams[0] == streams[1] == streams[2] == sorted(streams[0])
        states = {
            c.core.views["g"].state.get("o").materialized() for c in clients
        }
        assert len(states) == 1

    def test_exclusive_mode_across_servers(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        before = len(alice.deliveries)
        ex = alice.call("bcast_update", "room", "doc", b"mine", DeliveryMode.EXCLUSIVE)
        world.run_for(1.0)
        assert ex.ok
        assert len(alice.deliveries) == before
        assert bob.core.views["room"].state.get("doc").materialized() == b"mine"
        bob.call("bcast_update", "room", "doc", b"!")
        world.run_for(1.0)
        assert alice.core.views["room"].state.get("doc").materialized() == b"mine!"

    def test_membership_notices_cross_servers(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        notices = alice.events_of_kind("membership")
        assert notices and notices[-1].joined[0].client_id == "bob"
        carol = world.add_client(client_id="carol", server="srv-0")
        world.run_for(0.5)
        carol.call("join_group", "room")
        world.run_for(1.0)
        assert alice.events_of_kind("membership")[-1].joined[0].client_id == "carol"
        bob.call("leave_group", "room")
        world.run_for(1.0)
        assert alice.events_of_kind("membership")[-1].left[0].client_id == "bob"

    def test_observer_role_enforced_at_the_replica(self, world):
        from repro.wire.messages import MemberRole

        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        watcher = world.add_client(client_id="watcher", server="srv-2")
        world.run_for(0.5)
        join = watcher.call("join_group", "room", role=MemberRole.OBSERVER)
        world.run_for(1.0)
        assert join.ok
        denied = watcher.call("bcast_update", "room", "doc", b"x")
        world.run_for(0.5)
        assert denied.error.code == "corona.not_authorized"
        # but the observer still receives deliveries
        alice.call("bcast_update", "room", "doc", b"seen")
        world.run_for(1.0)
        assert watcher.core.views["room"].state.get("doc").materialized() == b"seen"

    def test_exclusive_mode_same_replica(self, world):
        cluster = _cluster(world)
        alice = world.add_client(client_id="alice", server="srv-1")
        amy = world.add_client(client_id="amy", server="srv-1")
        world.run_for(0.5)
        alice.call("create_group", "g", True)
        world.run_for(0.5)
        alice.call("join_group", "g")
        amy.call("join_group", "g")
        world.run_for(0.5)
        before = len(alice.deliveries)
        ex = alice.call("bcast_update", "g", "o", b"quiet", DeliveryMode.EXCLUSIVE)
        world.run_for(1.0)
        assert ex.ok
        assert len(alice.deliveries) == before
        assert amy.core.views["g"].state.get("o").materialized() == b"quiet"
        amy.call("bcast_update", "g", "o", b"!")
        world.run_for(1.0)
        assert alice.core.views["g"].state.get("o").materialized() == b"quiet!"

    def test_get_membership_is_global(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        reply = alice.call("get_membership", "room")
        world.run_for(0.5)
        assert sorted(m.client_id for m in reply.value) == ["alice", "bob"]

    def test_state_transfer_policy_respected_across_servers(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        for i in range(5):
            alice.call("bcast_update", "room", "doc", b"%d" % i)
        world.run_for(1.0)
        late = world.add_client(client_id="late", server="srv-0")
        world.run_for(0.5)
        join = late.call(
            "join_group", "room",
            transfer=TransferSpec(policy=TransferPolicy.LATEST_N, last_n=2),
        )
        world.run_for(1.0)
        assert join.ok
        assert join.value.state.get("doc").materialized() == b"34"

    def test_list_groups_shows_global_registry(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        listing = bob.call("list_groups")
        world.run_for(0.5)
        (info,) = listing.value
        assert info.name == "room"
        assert info.member_count == 2

    def test_delete_group_cluster_wide(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        alice.call("delete_group", "room")
        world.run_for(1.0)
        assert bob.events_of_kind("group_deleted") == ["room"]
        for server in cluster:
            assert "room" not in server.core.known_groups
            assert "room" not in server.core.groups

    def test_transient_group_dies_cluster_wide(self, world):
        cluster = _cluster(world)
        alice = world.add_client(client_id="alice", server="srv-1")
        bob = world.add_client(client_id="bob", server="srv-2")
        world.run_for(0.5)
        alice.call("create_group", "temp", False)
        world.run_for(0.5)
        alice.call("join_group", "temp")
        bob.call("join_group", "temp")
        world.run_for(0.5)
        alice.call("leave_group", "temp")
        world.run_for(0.5)
        assert "temp" in cluster[0].core.known_groups  # bob still in
        bob.call("leave_group", "temp")
        world.run_for(1.0)
        for server in cluster:
            assert "temp" not in server.core.known_groups


class TestInterestRouting:
    def test_uninterested_server_gets_no_broadcast_traffic(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)  # members on srv-1, srv-2
        world.run_for(0.5)
        # srv-0's group copy exists only at the coordinator; the group is
        # NOT installed at any other uninvolved server.  Add srv-3? the
        # cluster has exactly 3, so check message counters instead: after
        # settling, bcast and count sequenced deliveries at each server.
        recv_before = {s.host_id: s.stats.messages_received for s in cluster}
        alice.call("bcast_update", "room", "doc", b"x")
        world.run_for(1.0)
        # coordinator (sequencer) and srv-2 (bob) must see traffic
        assert cluster[0].stats.messages_received > recv_before["srv-0"]
        assert cluster[2].stats.messages_received > recv_before["srv-2"]

    def test_replica_drops_interest_when_last_member_leaves(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        assert "room" in cluster[2].core.groups
        bob.call("leave_group", "room")
        world.run_for(1.0)
        assert "room" not in cluster[2].core.groups
        coordinator = cluster[0].core
        assert "srv-2" not in coordinator._interest["room"]

    def test_backup_assigned_when_no_replica_interested(self, world):
        cluster = _cluster(world)
        alice = world.add_client(client_id="alice", server="srv-0")
        world.run_for(0.5)
        alice.call("create_group", "solo", True)
        world.run_for(0.5)
        coordinator = cluster[0].core
        # nobody but the coordinator holds the state: a backup is drafted
        backups = coordinator._backups.get("solo", set())
        assert len(backups) == 1
        backup_id = next(iter(backups))
        world.run_for(1.0)
        backup = world.servers[backup_id].core
        assert "solo" in backup.groups

    def test_backup_receives_broadcasts(self, world):
        cluster = _cluster(world)
        alice = world.add_client(client_id="alice", server="srv-0")
        world.run_for(0.5)
        alice.call("create_group", "solo", True)
        world.run_for(0.5)
        alice.call("join_group", "solo")
        world.run_for(0.5)
        alice.call("bcast_update", "solo", "o", b"data")
        world.run_for(1.0)
        coordinator = cluster[0].core
        backup_id = next(iter(coordinator._backups["solo"]))
        backup = world.servers[backup_id].core
        assert backup.groups["solo"].state.get("o").materialized() == b"data"


class TestGlobalLocks:
    def test_lock_exclusive_across_servers(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        got_a = alice.call("acquire_lock", "room", "doc")
        world.run_for(0.5)
        assert got_a.ok
        got_b = bob.call("acquire_lock", "room", "doc", blocking=False)
        world.run_for(0.5)
        assert not got_b.ok
        assert got_b.error.code == "corona.lock_held"

    def test_queued_lock_granted_across_servers(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        got_a = alice.call("acquire_lock", "room", "doc")
        world.run_for(0.5)
        got_b = bob.call("acquire_lock", "room", "doc")
        world.run_for(0.5)
        assert not got_b.done
        rel = alice.call("release_lock", "room", "doc")
        world.run_for(1.0)
        assert rel.ok and got_b.ok

    def test_leaving_client_releases_global_lock(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        alice.call("acquire_lock", "room", "doc")
        world.run_for(0.5)
        got_b = bob.call("acquire_lock", "room", "doc")
        world.run_for(0.5)
        alice.call("leave_group", "room")
        world.run_for(1.0)
        assert got_b.ok


class TestReductionClusterWide:
    def test_reduce_order_reaches_every_state_holder(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        for i in range(4):
            alice.call("bcast_update", "room", "doc", b"%d" % i)
        world.run_for(1.0)
        reduce = bob.call("reduce_log", "room")
        world.run_for(1.0)
        assert reduce.ok
        for server in cluster:
            group = server.core.groups.get("room")
            if group is not None:
                assert len(group.log) == 0
                assert group.state.get("doc").base == b"0123"


class TestFailover:
    def test_rightful_successor_takes_over(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        cluster[0].host.crash()
        world.run_for(5.0)
        assert cluster[1].core.is_coordinator
        assert not cluster[2].core.is_coordinator
        assert cluster[1].core.server_list.ids() == ["srv-1", "srv-2"]
        assert cluster[2].core.server_list.ids() == ["srv-1", "srv-2"]

    def test_service_continues_after_failover(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        alice.call("bcast_update", "room", "doc", b"before;")
        world.run_for(1.0)
        cluster[0].host.crash()
        world.run_for(5.0)
        up = bob.call("bcast_update", "room", "doc", b"after;")
        world.run_for(2.0)
        assert up.ok
        for client in (alice, bob):
            assert (
                client.core.views["room"].state.get("doc").materialized()
                == b"before;after;"
            )

    def test_seqnos_continue_monotonically_after_failover(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        alice.call("bcast_update", "room", "doc", b"a")
        world.run_for(1.0)
        last_before = alice.deliveries[-1][1].record.seqno
        cluster[0].host.crash()
        world.run_for(5.0)
        bob.call("bcast_update", "room", "doc", b"b")
        world.run_for(2.0)
        assert alice.deliveries[-1][1].record.seqno == last_before + 1

    def test_two_crashes_tolerated_with_four_servers(self, world):
        cluster = _cluster(world, n=4)
        alice = world.add_client(client_id="alice", server="srv-3")
        world.run_for(0.5)
        alice.call("create_group", "g", True)
        world.run_for(0.5)
        alice.call("join_group", "g")
        world.run_for(0.5)
        cluster[0].host.crash()  # coordinator
        cluster[1].host.crash()  # rightful successor too
        world.run_for(10.0)
        assert cluster[2].core.is_coordinator
        up = alice.call("bcast_update", "g", "o", b"still-alive")
        world.run_for(2.0)
        assert up.ok

    def test_request_during_outage_fails_cleanly(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        cluster[0].host.crash()
        # immediately, before the election settles:
        up = alice.call("bcast_update", "room", "doc", b"x")
        world.run_for(0.3)
        if up.done:  # either failed fast with the partition error...
            assert up.error is not None
        world.run_for(5.0)
        retry = alice.call("bcast_update", "room", "doc", b"x")
        world.run_for(2.0)
        assert retry.ok  # ...or the retry after failover succeeds

    def test_dead_servers_clients_removed_from_membership(self, world):
        cluster = _cluster(world)
        alice, bob = _collab(world, cluster)
        # crash bob's *server*; bob's membership should evaporate
        cluster[2].host.crash()
        world.run_for(3.0)
        reply = alice.call("get_membership", "room")
        world.run_for(1.0)
        assert [m.client_id for m in reply.value] == ["alice"]
        notices = alice.events_of_kind("membership")
        assert notices[-1].left[0].client_id == "bob"

    def test_replica_crash_removed_from_list(self, world):
        cluster = _cluster(world)
        cluster[2].host.crash()
        world.run_for(3.0)
        assert cluster[0].core.server_list.ids() == ["srv-0", "srv-1"]
        assert cluster[1].core.server_list.ids() == ["srv-0", "srv-1"]


class TestLateServerJoin:
    def test_new_server_registers_with_coordinator(self, world):
        from repro.core.server import ServerConfig
        from repro.replication.node import ReplicatedServerCore, ReplicationConfig
        from repro.sim.host import SimHost
        from repro.sim.harness import SimServer
        from repro.sim.profiles import ULTRASPARC_1
        from repro.wire.messages import ServerInfo

        cluster = _cluster(world)
        known = tuple(cluster[0].core.server_list.servers)
        info = ServerInfo("srv-late", "srv-late", 0)
        host = SimHost(world.kernel, world.network, "srv-late", "lan", ULTRASPARC_1)
        core = ReplicatedServerCore(
            ServerConfig(server_id="srv-late", persist=False),
            ReplicationConfig(info=info, initial_servers=known + (info,),
                              heartbeat_interval=0.5, suspicion_timeout=1.0),
            clock=world.kernel,
        )
        host.set_core(core)
        world.servers["srv-late"] = SimServer(host, core)
        host.invoke(core.start)
        world.run_for(2.0)
        assert cluster[0].core.server_list.ids()[-1] == "srv-late"
        assert core.server_list.ids() == ["srv-0", "srv-1", "srv-2", "srv-late"]
        # and it can serve clients right away
        carol = world.add_client(client_id="carol", server="srv-late")
        world.run_for(0.5)
        carol.call("create_group", "fresh", True)
        world.run_for(1.0)
        assert "fresh" in cluster[0].core.known_groups
