"""Tests for server-list management and succession order."""

import pytest

from repro.replication.topology import ServerList
from repro.wire.messages import ServerInfo


def _info(i):
    return ServerInfo(f"s{i}", f"host{i}", 7000 + i)


@pytest.fixture
def trio():
    return ServerList([_info(0), _info(1), _info(2)])


class TestMembership:
    def test_contains_and_ids(self, trio):
        assert "s1" in trio
        assert "s9" not in trio
        assert trio.ids() == ["s0", "s1", "s2"]
        assert len(trio) == 3

    def test_add_bumps_version(self, trio):
        v = trio.version
        assert trio.add(_info(3))
        assert trio.version == v + 1
        assert trio.ids()[-1] == "s3"

    def test_add_duplicate_rejected(self, trio):
        v = trio.version
        assert not trio.add(_info(1))
        assert trio.version == v

    def test_remove(self, trio):
        assert trio.remove("s1")
        assert trio.ids() == ["s0", "s2"]
        assert not trio.remove("s1")

    def test_get(self, trio):
        assert trio.get("s2") == _info(2)
        assert trio.get("nope") is None


class TestReplace:
    def test_newer_version_adopted(self, trio):
        assert trio.replace((_info(5),), version=trio.version + 1)
        assert trio.ids() == ["s5"]

    def test_stale_version_rejected(self, trio):
        trio.version = 10
        assert not trio.replace((_info(5),), version=3)
        assert trio.ids() == ["s0", "s1", "s2"]

    def test_empty_list_accepts_any_version(self):
        empty = ServerList()
        assert empty.replace((_info(1),), version=0)


class TestSuccession:
    def test_coordinator_is_head(self, trio):
        assert trio.coordinator() == _info(0)
        assert ServerList().coordinator() is None

    def test_position(self, trio):
        assert trio.position("s0") == 0
        assert trio.position("s2") == 2
        assert trio.position("nope") == -1

    def test_successor_after_failures(self, trio):
        assert trio.successor_after({"s0"}) == _info(1)
        assert trio.successor_after({"s0", "s1"}) == _info(2)
        assert trio.successor_after({"s0", "s1", "s2"}) is None

    def test_peers_of(self, trio):
        assert [s.server_id for s in trio.peers_of("s1")] == ["s0", "s2"]

    def test_majority(self, trio):
        assert trio.majority() == 2
        trio.add(_info(3))
        assert trio.majority() == 3
