"""Replica crash/restart: recover from disk, catch up the missed suffix.

Paper §4.1: "although a server saves the state on stable storage, the
information may be unavailable during the time the server is down" — so
when it comes back it must resynchronize before serving.
"""

import pytest

from repro.core.server import ServerConfig
from repro.replication.node import ReplicatedServerCore, ReplicationConfig
from repro.sim.harness import CoronaWorld
from repro.sim.host import SimHost
from repro.sim.profiles import ULTRASPARC_1
from repro.storage.store import GroupStore
from repro.wire.messages import ServerInfo


def _cluster_with_stores(world, tmp_path, n=3):
    infos = tuple(ServerInfo(f"srv-{i}", f"srv-{i}", 0) for i in range(n))
    servers = []
    for i, info in enumerate(infos):
        store = GroupStore(tmp_path / info.server_id)
        host = SimHost(
            world.kernel, world.network, info.server_id, "lan", ULTRASPARC_1,
            store=store,
        )
        core = ReplicatedServerCore(
            ServerConfig(server_id=info.server_id),
            ReplicationConfig(info=info, initial_servers=infos,
                              heartbeat_interval=0.5, suspicion_timeout=1.5),
            clock=world.kernel,
        )
        host.set_core(core)
        from repro.sim.harness import SimServer

        server = SimServer(host, core)
        world.servers[info.server_id] = server
        servers.append(server)
        host.invoke(core.start)
    world.run_for(1.0)
    return infos, servers


def _restart_replica(world, tmp_path, infos, server):
    """Bring a crashed replica back from its on-disk state."""
    info = next(i for i in infos if i.server_id == server.host_id)
    store = GroupStore(tmp_path / info.server_id)
    core = ReplicatedServerCore(
        ServerConfig(server_id=info.server_id),
        ReplicationConfig(info=info, initial_servers=infos,
                          heartbeat_interval=0.5, suspicion_timeout=1.5),
        clock=world.kernel,
        recovered=store.recover_all(),
    )
    server.host.store = store
    server.host.restart(core)
    server.core = core
    server.host.invoke(core.start)
    return core


class TestReplicaRestart:
    def test_restarted_replica_catches_up_missed_updates(self, tmp_path):
        world = CoronaWorld()
        infos, servers = _cluster_with_stores(world, tmp_path)
        alice = world.add_client(client_id="alice", server="srv-1")
        bob = world.add_client(client_id="bob", server="srv-2")
        world.run_for(0.5)
        alice.call("create_group", "g", True)
        world.run_for(0.5)
        alice.call("join_group", "g")
        bob.call("join_group", "g")
        world.run_for(0.5)
        alice.call("bcast_update", "g", "doc", b"before;")
        world.run_for(1.0)

        # srv-2 (bob's server) dies; bob's client dies with the link
        servers[2].host.crash()
        bob.host.crash()
        world.run_for(3.0)

        # the world moves on without them
        alice.call("bcast_update", "g", "doc", b"while-down;")
        world.run_for(1.0)

        core = _restart_replica(world, tmp_path, infos, servers[2])
        world.run_for(3.0)
        # recovered from disk AND caught up the missed suffix
        assert "g" in core.groups
        assert core.groups["g"].state.get("doc").materialized() == b"before;while-down;"
        assert core.groups["g"].log.next_seqno == 2

        # a new client on the restarted replica gets correct state
        carol = world.add_client(client_id="carol", server="srv-2")
        world.run_for(0.5)
        join = carol.call("join_group", "g")
        world.run_for(1.0)
        assert join.ok
        assert join.value.state.get("doc").materialized() == b"before;while-down;"

        # and live traffic flows to it again without seqno gaps
        alice.call("bcast_update", "g", "doc", b"after;")
        world.run_for(1.0)
        assert carol.core.views["g"].state.get("doc").materialized() == b"before;while-down;after;"

    def test_restart_with_no_missed_updates(self, tmp_path):
        world = CoronaWorld()
        infos, servers = _cluster_with_stores(world, tmp_path)
        alice = world.add_client(client_id="alice", server="srv-2")
        world.run_for(0.5)
        alice.call("create_group", "g", True)
        world.run_for(0.5)
        alice.call("join_group", "g")
        world.run_for(0.5)
        alice.call("bcast_update", "g", "doc", b"data;")
        world.run_for(1.0)
        servers[2].host.crash()
        alice.host.crash()
        world.run_for(2.0)
        core = _restart_replica(world, tmp_path, infos, servers[2])
        world.run_for(3.0)
        assert core.groups["g"].state.get("doc").materialized() == b"data;"
        assert core.groups["g"].log.next_seqno == 1

    def test_restart_after_reduction_rebases(self, tmp_path):
        world = CoronaWorld()
        infos, servers = _cluster_with_stores(world, tmp_path)
        alice = world.add_client(client_id="alice", server="srv-1")
        bob = world.add_client(client_id="bob", server="srv-2")
        world.run_for(0.5)
        alice.call("create_group", "g", True)
        world.run_for(0.5)
        alice.call("join_group", "g")
        bob.call("join_group", "g")
        world.run_for(0.5)
        alice.call("bcast_update", "g", "doc", b"a;")
        world.run_for(1.0)
        servers[2].host.crash()
        bob.host.crash()
        world.run_for(3.0)
        # updates + a reduction while the replica is down: the suffix the
        # replica will ask for is gone
        alice.call("bcast_update", "g", "doc", b"b;")
        world.run_for(0.5)
        alice.call("reduce_log", "g")
        world.run_for(1.0)
        core = _restart_replica(world, tmp_path, infos, servers[2])
        world.run_for(3.0)
        assert core.groups["g"].state.get("doc").materialized() == b"a;b;"
        assert core.groups["g"].log.next_seqno == 2
