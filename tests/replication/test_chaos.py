"""Chaos tests: random failures against the replicated service.

Property: whatever sequence of replica/coordinator crashes the fleet
suffers, every broadcast that was ACKNOWLEDGED to a client is delivered,
in the same total order, to every member that stays alive — and the
surviving cluster converges to one state.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.harness import CoronaWorld


def _cluster_world(n_servers=4):
    world = CoronaWorld()
    cluster = world.add_replicated_cluster(
        n_servers, heartbeat_interval=0.4, suspicion_timeout=0.9
    )
    world.run_for(1.0)
    return world, cluster


def _run_chaos(seed: int, n_crashes: int) -> None:
    rng = random.Random(seed)
    world, cluster = _cluster_world()
    # two observer clients on the last (never-crashed) server
    writer = world.add_client(client_id="writer", server="srv-3")
    reader = world.add_client(client_id="reader", server="srv-3")
    world.run_for(0.5)
    writer.call("create_group", "g", True)
    world.run_for(0.5)
    writer.call("join_group", "g")
    reader.call("join_group", "g")
    world.run_for(0.5)

    acknowledged = []
    crashable = cluster[:-1]  # srv-3 hosts the observers
    crashed = []
    payload_counter = 0

    for round_no in range(12):
        # maybe crash somebody (up to n_crashes total)
        if crashed.__len__() < n_crashes and rng.random() < 0.4:
            victim = rng.choice([s for s in crashable if s.host.alive])
            victim.host.crash()
            crashed.append(victim)
            world.run_for(rng.uniform(0.1, 2.0))
        payload = f"m{payload_counter};".encode()
        payload_counter += 1
        attempt = writer.call("bcast_update", "g", "doc", payload)
        world.run_for(3.0)
        if attempt.done and attempt.ok:
            acknowledged.append(payload)

    world.run_for(8.0)

    # every acknowledged update reached both observers, in order
    expected = b"".join(acknowledged)
    for client in (writer, reader):
        view = client.core.views["g"]
        materialized = view.state.get("doc").materialized() if "doc" in view.state else b""
        assert materialized == expected, (
            f"seed={seed}: {materialized!r} != {expected!r}"
        )
    # the survivors agree on one coordinator
    alive = [s for s in cluster if s.host.alive]
    coordinators = [s for s in alive if s.core.is_coordinator]
    assert len(coordinators) == 1
    # and every surviving state holder converged
    states = {
        s.core.groups["g"].state.get("doc").materialized()
        for s in alive
        if "g" in s.core.groups and "doc" in s.core.groups["g"].state
    }
    assert states == {expected}


@pytest.mark.parametrize("seed", [1, 2, 7, 13, 42, 99])
def test_single_crash_chaos(seed):
    _run_chaos(seed, n_crashes=1)


@pytest.mark.parametrize("seed", [3, 11, 21, 77])
def test_double_crash_chaos(seed):
    _run_chaos(seed, n_crashes=2)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_chaos_property(seed):
    _run_chaos(seed, n_crashes=2)
