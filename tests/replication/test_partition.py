"""Tests for partition reconciliation (paper §4.2).

Pure-logic tests for the policy helpers, plus full simulations: split a
four-server cluster, let both sides diverge, heal, reconcile under each
policy, and verify the cluster converges.
"""

import pytest

from repro.core.state import SharedState
from repro.replication.partition import (
    adopt_longest_branch,
    adopt_senior,
    common_point,
    fork_branches,
    prefer_rollback,
    rollback_state,
)
from repro.sim.harness import CoronaWorld
from repro.wire.messages import (
    ObjectState,
    ReconcileOffer,
    ReconcilePolicy,
    UpdateKind,
    UpdateRecord,
)


def _offer(branch, tip, base=-2, ckpt=-1):
    return ReconcileOffer("g", branch, ckpt, tip, base)


class TestCommonPoint:
    def test_uses_takeover_base_of_junior(self):
        senior = _offer("a", tip=9)          # never took over
        junior = _offer("b", tip=7, base=4)  # took over at seqno 4
        assert common_point(senior, junior) == 4

    def test_both_took_over_uses_min(self):
        a = _offer("a", tip=9, base=5)
        b = _offer("b", tip=7, base=3)
        assert common_point(a, b) == 3

    def test_no_takeover_uses_min_tip(self):
        assert common_point(_offer("a", tip=9), _offer("b", tip=7)) == 7


class TestChoosers:
    def test_adopt_senior(self):
        policy, adopted = adopt_senior(_offer("snr", 9), _offer("jnr", 20, base=5))
        assert policy is ReconcilePolicy.ADOPT_ONE and adopted == "snr"

    def test_adopt_longest(self):
        policy, adopted = adopt_longest_branch(
            _offer("snr", 6, base=-2), _offer("jnr", 20, base=5)
        )
        assert adopted == "jnr"
        policy, adopted = adopt_longest_branch(
            _offer("snr", 30, base=-2), _offer("jnr", 7, base=5)
        )
        assert adopted == "snr"

    def test_rollback_and_fork(self):
        assert prefer_rollback(_offer("a", 1), _offer("b", 2))[0] is ReconcilePolicy.ROLL_BACK
        assert fork_branches(_offer("a", 1), _offer("b", 2))[0] is ReconcilePolicy.FORK


class TestRollbackState:
    def _state(self):
        state = SharedState((ObjectState("o", b"base"),))
        for seqno, data in [(0, b"0"), (1, b"1"), (2, b"2")]:
            state.apply(UpdateRecord(seqno, UpdateKind.UPDATE, "o", data, "c", 0.0))
        return state

    def test_rollback_drops_later_increments(self):
        state = self._state()
        result = rollback_state(state, 1)
        assert result.ok
        assert state.get("o").materialized() == b"base01"

    def test_rollback_to_everything_is_noop(self):
        state = self._state()
        assert rollback_state(state, 10).ok
        assert state.get("o").materialized() == b"base012"

    def test_rollback_blocked_by_bcast_state(self):
        state = self._state()
        state.apply(UpdateRecord(3, UpdateKind.STATE, "o", b"NEW", "c", 0.0))
        result = rollback_state(state, 1)
        assert not result.ok
        # and nothing was modified
        assert state.get("o").materialized() == b"NEW"


def _split_world(chooser=None):
    """Four servers; partition {srv-0, srv-1} vs {srv-2, srv-3};
    alice on srv-1, bob on srv-3, both in 'room' with a shared prefix."""
    world = CoronaWorld()
    kwargs = {"heartbeat_interval": 0.5, "suspicion_timeout": 1.0}
    cluster = world.add_replicated_cluster(4, **kwargs)
    if chooser is not None:
        for server in cluster:
            server.core.rconfig.reconcile_chooser = chooser
    world.run_for(1.0)
    alice = world.add_client(client_id="alice", server="srv-1")
    bob = world.add_client(client_id="bob", server="srv-3")
    world.run_for(0.5)
    alice.call("create_group", "room", True)
    world.run_for(0.5)
    alice.call("join_group", "room")
    world.run_for(0.5)
    bob.call("join_group", "room")
    world.run_for(0.5)
    alice.call("bcast_update", "room", "doc", b"common;")
    world.run_for(1.0)

    side_a = {"srv-0", "srv-1", "alice"}
    side_b = {"srv-2", "srv-3", "bob"}
    world.network.partition(side_a, side_b)
    world.run_for(8.0)  # side B elects srv-2; side A drops the others
    assert cluster[0].core.is_coordinator
    assert cluster[2].core.is_coordinator

    # both sides diverge
    a_up = alice.call("bcast_update", "room", "doc", b"sideA;")
    b_up = bob.call("bcast_update", "room", "doc", b"sideB;")
    world.run_for(3.0)
    assert a_up.ok and b_up.ok

    world.network.heal()
    return world, cluster, alice, bob


def _reconcile(world, cluster):
    junior = cluster[2]
    senior_info = cluster[0].core.rconfig.info
    junior.host.invoke(
        lambda: junior.core.initiate_reconciliation(senior_info) or []
    )
    world.run_for(5.0)


class TestPartitionScenarios:
    def test_sides_diverge_during_partition(self):
        world, cluster, alice, bob = _split_world()
        assert alice.core.views["room"].state.get("doc").materialized() == b"common;sideA;"
        assert bob.core.views["room"].state.get("doc").materialized() == b"common;sideB;"

    def test_adopt_senior_converges_to_side_a(self):
        world, cluster, alice, bob = _split_world(chooser=adopt_senior)
        _reconcile(world, cluster)
        assert cluster[2].core.is_coordinator is False
        assert cluster[0].core.server_list.ids()[0] == "srv-0"
        # bob's replica was rebased onto the senior branch
        assert bob.core.views["room"].state.get("doc").materialized() == b"common;sideA;"
        assert bob.events_of_kind("rebased")
        # the merged cluster serves everyone again
        up = bob.call("bcast_update", "room", "doc", b"merged;")
        world.run_for(3.0)
        assert up.ok
        assert alice.core.views["room"].state.get("doc").materialized() == b"common;sideA;merged;"
        assert bob.core.views["room"].state.get("doc").materialized() == b"common;sideA;merged;"

    def test_rollback_rewinds_both_sides(self):
        world, cluster, alice, bob = _split_world(chooser=prefer_rollback)
        _reconcile(world, cluster)
        for client in (alice, bob):
            assert (
                client.core.views["room"].state.get("doc").materialized()
                == b"common;"
            )
        up = alice.call("bcast_update", "room", "doc", b"fresh;")
        world.run_for(3.0)
        assert up.ok
        assert bob.core.views["room"].state.get("doc").materialized() == b"common;fresh;"

    def test_fork_splits_into_two_groups(self):
        world, cluster, alice, bob = _split_world(chooser=fork_branches)
        _reconcile(world, cluster)
        # alice continues in 'room'; bob's branch became a new group
        forked = bob.events_of_kind("forked")
        assert forked and forked[0][0] == "room"
        new_name = forked[0][1]
        assert new_name in bob.core.views
        assert bob.core.views[new_name].state.get("doc").materialized() == b"common;sideB;"
        assert alice.core.views["room"].state.get("doc").materialized() == b"common;sideA;"
        # both groups exist cluster-wide after the merge
        world.run_for(2.0)
        assert new_name in cluster[0].core.known_groups
        assert "room" in cluster[0].core.known_groups

    def test_membership_restored_after_merge(self):
        world, cluster, alice, bob = _split_world(chooser=adopt_senior)
        _reconcile(world, cluster)
        world.run_for(2.0)
        reply = alice.call("get_membership", "room")
        world.run_for(2.0)
        assert sorted(m.client_id for m in reply.value) == ["alice", "bob"]

    def test_junior_only_group_survives_merge(self):
        world, cluster, alice, bob = _split_world(chooser=adopt_senior)
        # a group born during the partition, on the junior side
        born = bob.call("create_group", "wartime", True)
        world.run_for(2.0)
        assert born.ok
        _reconcile(world, cluster)
        world.run_for(3.0)
        assert "wartime" in cluster[0].core.known_groups
