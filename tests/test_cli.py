"""Tests for the command-line entry points."""

import asyncio
import socket
import threading
import time

import pytest

from repro.cli import _BENCHES, bench_main, server_main


class TestBenchCli:
    @pytest.mark.parametrize("name", ["join", "reduction", "failover"])
    def test_quick_runs_print_a_table(self, name, capsys):
        assert bench_main([name, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "(reproduced)" in out
        assert "---" in out  # table separator rendered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["definitely-not-a-bench"])

    def test_every_registered_bench_resolves(self):
        from repro.bench import experiments

        for func_name, _variants in _BENCHES.values():
            assert callable(getattr(experiments, func_name))


class TestServerCli:
    def test_bad_port_rejected(self):
        with pytest.raises(SystemExit):
            server_main(["--port", "not-a-number"])

    def test_server_starts_and_accepts_tcp(self, tmp_path):
        """Boot the real CLI server in a thread, poke it over TCP."""
        # pick a free port first
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        ready = threading.Event()
        stop_loop: list = []

        def run_server():
            async def main():
                from repro.core.server import ServerConfig
                from repro.runtime.server import CoronaServer
                from repro.storage.store import GroupStore

                server = CoronaServer(
                    config=ServerConfig(server_id="cli-test"),
                    store=GroupStore(tmp_path / "data"),
                )
                await server.start("127.0.0.1", port)
                ready.set()
                while not stop_loop:
                    await asyncio.sleep(0.05)
                await server.stop()

            asyncio.run(main())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:

            async def client_side():
                from repro.runtime.client import CoronaClient

                client = await CoronaClient.connect(("127.0.0.1", port), "cli-probe")
                assert client.core.server_id == "cli-test"
                server_time = await client.ping()
                assert isinstance(server_time, float)
                await client.close()

            asyncio.run(client_side())
        finally:
            stop_loop.append(True)
            thread.join(timeout=10)


class TestTopologyCli:
    def test_table_report(self, capsys):
        from repro.cli import topology_main

        assert topology_main(["--shards", "3", "--groups", "4"]) == 0
        out = capsys.readouterr().out
        # lease table shows the seeded migration (epoch bumped to 1)
        assert "lease" in out
        assert "committed" in out
        assert "room-0" in out

    def test_json_report_is_machine_readable(self, capsys):
        import json

        from repro.cli import topology_main

        assert topology_main(
            ["--shards", "3", "--groups", "4", "--format", "json"]
        ) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["shards"] == 3
        assert report["epochs"] == {"room-0": 1}
        assert report["migrations"][0]["outcome"] == "committed"
        assert sum(
            shard["group_count"] for shard in report["per_shard"].values()
        ) == 4

    def test_rejects_single_shard(self, capsys):
        from repro.cli import topology_main

        assert topology_main(["--shards", "1"]) == 2


class TestDeepcheckTodoGate:
    def test_todo_justification_fails_the_gate(self, tmp_path, capsys, monkeypatch):
        """A baseline entry still carrying the --update-baseline TODO
        placeholder must fail `repro deepcheck` even with zero new
        findings."""
        import json

        from repro.analysis.deepcheck import baseline_payload, deepcheck_paths
        from repro.cli import deepcheck_main

        src = tmp_path / "src"
        (src / "repro").mkdir(parents=True)
        (src / "repro" / "snoop.py").write_text(
            "from repro.core.group_runtime import GroupRuntime\n"
            "class Spy:\n"
            "    def peek(self, rt: GroupRuntime):\n"
            "        return rt.reduce()\n"
        )
        _graph, findings = deepcheck_paths(src, rules=("SHARD004",))
        assert findings, "scaffold produced no SHARD004 finding"
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps(baseline_payload(findings, [])))
        payload = json.loads(baseline.read_text())
        assert all(
            str(e["justification"]).upper().startswith("TODO")
            for e in payload["findings"]
        )
        rc = deepcheck_main(
            [str(src), "--rules", "SHARD004", "--baseline", str(baseline)]
        )
        out = capsys.readouterr().out
        assert rc == 1
        assert "unjustified" in out

        # writing a real justification clears the gate
        for entry in payload["findings"]:
            entry["justification"] = "test scaffold: intentional access"
        baseline.write_text(json.dumps(payload))
        assert deepcheck_main(
            [str(src), "--rules", "SHARD004", "--baseline", str(baseline)]
        ) == 0
