"""Tests for the command-line entry points."""

import asyncio
import socket
import threading
import time

import pytest

from repro.cli import _BENCHES, bench_main, server_main


class TestBenchCli:
    @pytest.mark.parametrize("name", ["join", "reduction", "failover"])
    def test_quick_runs_print_a_table(self, name, capsys):
        assert bench_main([name, "--quick"]) == 0
        out = capsys.readouterr().out
        assert "(reproduced)" in out
        assert "---" in out  # table separator rendered

    def test_unknown_experiment_rejected(self):
        with pytest.raises(SystemExit):
            bench_main(["definitely-not-a-bench"])

    def test_every_registered_bench_resolves(self):
        from repro.bench import experiments

        for func_name, _variants in _BENCHES.values():
            assert callable(getattr(experiments, func_name))


class TestServerCli:
    def test_bad_port_rejected(self):
        with pytest.raises(SystemExit):
            server_main(["--port", "not-a-number"])

    def test_server_starts_and_accepts_tcp(self, tmp_path):
        """Boot the real CLI server in a thread, poke it over TCP."""
        # pick a free port first
        with socket.socket() as probe:
            probe.bind(("127.0.0.1", 0))
            port = probe.getsockname()[1]

        ready = threading.Event()
        stop_loop: list = []

        def run_server():
            async def main():
                from repro.core.server import ServerConfig
                from repro.runtime.server import CoronaServer
                from repro.storage.store import GroupStore

                server = CoronaServer(
                    config=ServerConfig(server_id="cli-test"),
                    store=GroupStore(tmp_path / "data"),
                )
                await server.start("127.0.0.1", port)
                ready.set()
                while not stop_loop:
                    await asyncio.sleep(0.05)
                await server.stop()

            asyncio.run(main())

        thread = threading.Thread(target=run_server, daemon=True)
        thread.start()
        assert ready.wait(10)
        try:

            async def client_side():
                from repro.runtime.client import CoronaClient

                client = await CoronaClient.connect(("127.0.0.1", port), "cli-probe")
                assert client.core.server_id == "cli-test"
                server_time = await client.ping()
                assert isinstance(server_time, float)
                await client.close()

            asyncio.run(client_side())
        finally:
            stop_loop.append(True)
            thread.join(timeout=10)
