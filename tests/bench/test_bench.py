"""Tests for the benchmark harness: metrics, report rendering, workloads."""

import math

import pytest

from repro.bench.metrics import LatencySample, summarize
from repro.bench.report import format_table
from repro.bench.workload import BlastSender, MeasuredSender, build_room
from repro.sim.harness import CoronaWorld


class TestMetrics:
    def test_summarize_basic(self):
        stats = summarize([0.010, 0.020, 0.030])
        assert stats.count == 3
        assert stats.mean_ms == pytest.approx(20.0)
        assert stats.min_ms == pytest.approx(10.0)
        assert stats.max_ms == pytest.approx(30.0)
        assert stats.p50_ms == pytest.approx(20.0)

    def test_empty_sample(self):
        stats = summarize([])
        assert stats.count == 0
        assert math.isnan(stats.mean_ms)

    def test_sample_accumulates(self):
        sample = LatencySample()
        sample.add(0.001)
        sample.add(0.003)
        assert len(sample) == 2
        assert sample.stats().mean_ms == pytest.approx(2.0)

    def test_stats_str(self):
        assert "mean=" in str(summarize([0.01]))


class TestReport:
    def test_format_table_alignment(self):
        text = format_table("T", ["a", "bbbb"], [[1, 2.5], [10, 3.25]])
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a " in lines[2] and "bbbb" in lines[2]
        assert "2.50" in text and "3.25" in text

    def test_format_table_note(self):
        text = format_table("T", ["x"], [[1]], note="footnote")
        assert text.endswith("footnote")

    def test_empty_rows(self):
        text = format_table("T", ["col"], [])
        assert "col" in text


class TestWorkloads:
    def test_build_room_joins_everyone(self):
        world = CoronaWorld()
        server = world.add_server()
        clients = build_room(world, 5)
        group = server.core.groups["bench"]
        assert len(group) == 5
        assert [m.client_id for m in group.members()] == [
            c.client_id for c in clients
        ]

    def test_measured_sender_collects_rtts(self):
        world = CoronaWorld()
        world.add_server()
        clients = build_room(world, 3)
        probe = MeasuredSender(world, clients[-1], "bench", count=5, interval=0.05)
        probe.start(at=world.now + 0.1)
        world.run()
        assert len(probe.rtts) == 5
        assert all(v > 0 for v in probe.rtts.values)

    def test_measured_sender_warmup_excluded(self):
        world = CoronaWorld()
        world.add_server()
        clients = build_room(world, 3)
        probe = MeasuredSender(
            world, clients[-1], "bench", count=6, interval=0.05, warmup=2
        )
        probe.start(at=world.now + 0.1)
        world.run()
        assert len(probe.rtts) == 4

    def test_blast_sender_windowed(self):
        world = CoronaWorld()
        server = world.add_server()
        clients = build_room(world, 2)
        blaster = BlastSender(world, clients[0], "bench", size=500,
                              window=3, duration=1.0)
        blaster.start(at=world.now + 0.1)
        world.run_until(world.now + 2.0)
        assert blaster.sent > 10
        # windowed: in flight never exceeded the window
        assert blaster.sent - blaster.acked <= 3
        # every accepted message became a logged update at the server
        assert server.core.groups["bench"].log.next_seqno == blaster.acked


class TestExperimentSmoke:
    """Tiny-parameter runs of each experiment (full runs live in
    benchmarks/)."""

    def test_figure3_smoke(self):
        from repro.bench.experiments import figure3

        rows = figure3(client_counts=(3, 6), probes=5)
        assert rows[1].stateful_ms > rows[0].stateful_ms
        assert rows[0].overhead_pct < 10

    def test_table1_smoke(self):
        from repro.bench.experiments import table1

        cells = table1(sizes=(1000,), duration=1.0)
        assert all(c.delivered_kbps > 0 for c in cells)

    def test_join_latency_smoke(self):
        from repro.bench.experiments import join_latency

        rows = join_latency(state_bytes=10_000)
        assert all(r.corona_ms < r.isis_ms for r in rows)

    def test_failover_smoke(self):
        from repro.bench.experiments import failover

        rows = failover(suspicion_timeouts=(0.5,), n_servers=3)
        assert all(r.recovery_s > 0 for r in rows)
