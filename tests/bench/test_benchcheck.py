"""Tests for the benchmark regression gate (repro benchcheck)."""

import json

from repro.bench.compare import (
    GATED_BENCHMARKS,
    check_baseline,
    compare_results,
    default_baseline_dir,
)
from repro.cli import benchcheck_main


class TestCompareResults:
    def test_identical_payloads(self):
        payload = {"slope": 1.5, "rows": [{"clients": 5, "ms": 15.7}]}
        assert compare_results(payload, dict(payload)) == []

    def test_within_tolerance(self):
        base = {"ms": 100.0}
        assert compare_results(base, {"ms": 109.0}, rel_tol=0.10) == []
        assert compare_results(base, {"ms": 91.0}, rel_tol=0.10) == []

    def test_drift_beyond_tolerance(self):
        deviations = compare_results({"ms": 100.0}, {"ms": 111.0}, rel_tol=0.10)
        assert len(deviations) == 1
        assert "$.ms" in deviations[0]
        assert "+11.0%" in deviations[0]

    def test_zero_baseline_uses_abs_tol(self):
        assert compare_results({"n": 0}, {"n": 0.0}) == []
        deviations = compare_results({"n": 0}, {"n": 0.5})
        assert len(deviations) == 1

    def test_provenance_skipped_at_top_level_only(self):
        base = {"python": "3.10.0", "platform": "a", "data": {"python": 1.0}}
        fresh = {"python": "3.12.0", "platform": "b", "data": {"python": 2.0}}
        deviations = compare_results(base, fresh)
        assert len(deviations) == 1
        assert deviations[0].startswith("$.data.python")

    def test_missing_and_extra_keys(self):
        deviations = compare_results({"a": 1, "b": 2}, {"a": 1, "c": 3})
        assert any("$.b" in d and "missing from fresh" in d for d in deviations)
        assert any("$.c" in d and "not in baseline" in d for d in deviations)

    def test_list_length_mismatch(self):
        deviations = compare_results({"rows": [1, 2, 3]}, {"rows": [1, 2]})
        assert len(deviations) == 1
        assert "length 2" in deviations[0]

    def test_nested_list_elements(self):
        base = {"rows": [{"ms": 10.0}, {"ms": 20.0}]}
        fresh = {"rows": [{"ms": 10.0}, {"ms": 30.0}]}
        deviations = compare_results(base, fresh)
        assert len(deviations) == 1
        assert "$.rows[1].ms" in deviations[0]

    def test_non_numeric_leaves_compared_exactly(self):
        deviations = compare_results({"name": "fig3"}, {"name": "fig4"})
        assert len(deviations) == 1

    def test_bool_is_not_a_tolerant_number(self):
        # True == 1 numerically, but a flipped flag is a real change
        deviations = compare_results({"flag": True}, {"flag": False})
        assert len(deviations) == 1


class TestCheckBaseline:
    def _write(self, directory, name, payload):
        (directory / f"BENCH_{name}.json").write_text(json.dumps(payload))

    def test_round_trip(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        self._write(base_dir, "demo", {"ms": 100.0})
        self._write(fresh_dir, "demo", {"ms": 105.0})
        assert check_baseline("demo", base_dir, fresh_dir) == []
        self._write(fresh_dir, "demo", {"ms": 150.0})
        assert len(check_baseline("demo", base_dir, fresh_dir)) == 1

    def test_missing_files_reported(self, tmp_path):
        deviations = check_baseline("demo", tmp_path, tmp_path)
        assert "no committed baseline" in deviations[0]
        self._write(tmp_path, "demo", {"ms": 1.0})
        deviations = check_baseline("demo", tmp_path, tmp_path / "nope")
        assert "no fresh results" in deviations[0]

    def test_committed_baselines_exist_for_gated_set(self):
        root = default_baseline_dir()
        for name in GATED_BENCHMARKS:
            assert (root / f"BENCH_{name}.json").exists(), name


class TestBenchcheckCli:
    def test_passes_against_own_baselines(self, tmp_path, capsys):
        root = default_baseline_dir()
        for name in GATED_BENCHMARKS:
            source = root / f"BENCH_{name}.json"
            (tmp_path / source.name).write_text(source.read_text())
        rc = benchcheck_main(["--fresh-dir", str(tmp_path)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "fig3" in out and "table1" in out

    def test_fails_on_regression(self, tmp_path, capsys):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_demo.json").write_text(json.dumps({"ms": 100.0}))
        (fresh_dir / "BENCH_demo.json").write_text(json.dumps({"ms": 200.0}))
        rc = benchcheck_main([
            "demo", "--baseline-dir", str(base_dir),
            "--fresh-dir", str(fresh_dir),
        ])
        assert rc == 1
        assert "deviation" in capsys.readouterr().out

    def test_custom_tolerance(self, tmp_path):
        base_dir = tmp_path / "base"
        fresh_dir = tmp_path / "fresh"
        base_dir.mkdir()
        fresh_dir.mkdir()
        (base_dir / "BENCH_demo.json").write_text(json.dumps({"ms": 100.0}))
        (fresh_dir / "BENCH_demo.json").write_text(json.dumps({"ms": 140.0}))
        args = ["demo", "--baseline-dir", str(base_dir),
                "--fresh-dir", str(fresh_dir)]
        assert benchcheck_main(args) == 1
        assert benchcheck_main(args + ["--tolerance", "0.5"]) == 0

    def test_requires_fresh_dir(self, monkeypatch, capsys):
        monkeypatch.delenv("CORONA_BENCH_DIR", raising=False)
        assert benchcheck_main([]) == 2
        assert "CORONA_BENCH_DIR" in capsys.readouterr().err

    def test_fresh_dir_from_env(self, tmp_path, monkeypatch):
        root = default_baseline_dir()
        for name in GATED_BENCHMARKS:
            source = root / f"BENCH_{name}.json"
            (tmp_path / source.name).write_text(source.read_text())
        monkeypatch.setenv("CORONA_BENCH_DIR", str(tmp_path))
        assert benchcheck_main([]) == 0
