"""Unit tests for the bounded two-lane outbox (repro.net.flowcontrol).

These exercise the policy object in isolation — no hosts, no I/O — and
pin down the contract documented in docs/flow-control.md: lane
classification, control-first drain order, watermark coalescing with
skip annotation, the overflow sweep, and the coalesce-then-kick
ordering.
"""

import pytest

from repro.core.interpreter import DispatchStats
from repro.net.flowcontrol import (
    DEFAULT_FLOW,
    BoundedOutbox,
    FlowControlConfig,
    Lane,
    lane_of,
    policy_knobs,
)
from repro.wire import frames
from repro.wire.messages import (
    Ack,
    Delivery,
    DeliveryMode,
    Disconnect,
    DisconnectReason,
    MembershipNotice,
    SequencedBcast,
    UpdateKind,
    UpdateRecord,
)


def delivery(seqno, kind=UpdateKind.STATE, object_id="obj", group="g", size=16):
    return Delivery(
        group,
        UpdateRecord(seqno, kind, object_id, b"x" * size, "sender", 0.0),
    )


def outbox(stats=None, **knobs):
    defaults = dict(
        max_outbox_frames=8,
        max_outbox_bytes=1 << 20,
        coalesce_watermark=2,
        link_window=0.25,
    )
    defaults.update(knobs)
    return BoundedOutbox(
        FlowControlConfig(**defaults), stats if stats is not None else DispatchStats()
    )


class TestLanes:
    def test_only_client_deliveries_ride_the_bulk_lane(self):
        assert lane_of(delivery(1)) is Lane.BULK
        assert lane_of(Ack(1)) is Lane.CONTROL
        assert lane_of(MembershipNotice("g", "alice", True, 0)) is Lane.CONTROL
        assert lane_of(Disconnect(DisconnectReason.SLOW_CONSUMER)) is Lane.CONTROL
        # replication traffic is control: a replica's log must stay
        # complete, so SequencedBcast is never coalesced or kick-dropped.
        bcast = SequencedBcast(
            "g", delivery(1).update, "s1", 7, DeliveryMode.INCLUSIVE
        )
        assert lane_of(bcast) is Lane.CONTROL

    def test_control_drains_first_but_each_lane_stays_fifo(self):
        box = outbox()
        box.push(delivery(1))
        box.push(delivery(2))
        box.push(Ack(1))
        box.push(Ack(2))
        popped = [box.pop_next() for _ in range(4)]
        assert popped == [Ack(1), Ack(2), delivery(1), delivery(2)]
        assert box.pop_next() is None

    def test_pop_all_matches_pop_next_order(self):
        def fill(box):
            box.push(delivery(1))
            box.push(Ack(1))
            box.push(delivery(2))

        one, two = outbox(), outbox()
        fill(one)
        fill(two)
        drained = []
        while (msg := one.pop_next()) is not None:
            drained.append(msg)
        assert drained == two.pop_all()
        assert two.empty and two.queued_bytes == 0


class TestCoalescing:
    def test_below_watermark_pushes_are_plain_appends(self):
        stats = DispatchStats()
        box = outbox(stats, coalesce_watermark=4)
        for seq in range(3):  # same object, still under the watermark
            assert box.push(delivery(seq))
        assert stats.outbox_coalesced == 0
        assert box.depth == 3

    def test_superseded_state_coalesces_above_watermark(self):
        stats = DispatchStats()
        box = outbox(stats)  # watermark 2
        for seq in range(6):
            assert box.push(delivery(seq, object_id=f"obj-{seq % 2}"))
        # depth plateaus at the watermark; four frames coalesced away
        assert box.depth == 2
        assert stats.outbox_coalesced == 4
        survivors = box.pop_all()
        assert [d.update.seqno for d in survivors] == [4, 5]

    def test_skipped_seqnos_annotate_the_next_queued_frame_of_the_group(self):
        box = outbox()
        for seq in range(4):
            box.push(delivery(seq))  # one object: each push supersedes
        first, second = box.pop_all()
        # the receiver discovers the gap when it sees the next frame of
        # the group, so that frame carries the accumulated seqnos
        assert (first.update.seqno, first.skipped) == (2, (0, 1))
        assert (second.update.seqno, second.skipped) == (3, ())

    def test_skips_land_on_the_incoming_frame_when_nothing_is_queued_after(self):
        box = outbox(coalesce_watermark=0)
        box.push(delivery(1, object_id="a"))
        box.push(delivery(2, object_id="b"))  # last queued frame of "b"
        box.push(delivery(3, object_id="b"))  # supersedes it, no successor
        survivors = box.pop_all()
        assert [(d.update.seqno, d.skipped) for d in survivors] == [
            (1, ()),
            (3, (2,)),
        ]

    def test_updates_are_never_coalesced(self):
        stats = DispatchStats()
        box = outbox(stats, max_outbox_frames=16)
        for seq in range(6):
            assert box.push(delivery(seq, kind=UpdateKind.UPDATE))
        assert stats.outbox_coalesced == 0
        assert box.depth == 6

    def test_different_objects_do_not_coalesce_each_other(self):
        stats = DispatchStats()
        box = outbox(stats, max_outbox_frames=16, coalesce_watermark=0)
        box.push(delivery(1, object_id="a"))
        box.push(delivery(2, object_id="b"))
        assert stats.outbox_coalesced == 0
        assert box.depth == 2


class TestOverflow:
    def test_sweep_then_kick_ordering(self):
        """Overflow tries the sweep first; only when coalescing cannot
        make room does the consumer get kicked."""
        stats = DispatchStats()
        # watermark above the frame cap: no incremental coalescing, so
        # the queue genuinely fills with superseded STATE frames
        box = outbox(stats, max_outbox_frames=4, coalesce_watermark=99)
        for seq in range(4):
            assert box.push(delivery(seq))
        assert box.depth == 4
        # the 5th push overflows, but the sweep collapses the three
        # superseded frames — accepted, no kick
        assert box.push(delivery(4))
        assert stats.outbox_coalesced == 3
        assert stats.outbox_kicks == 0
        assert not box.kicked
        assert box.depth == 2  # seq 3 (annotated) + seq 4

    def test_kick_when_sweep_cannot_make_room(self):
        stats = DispatchStats()
        box = outbox(stats, max_outbox_frames=4, coalesce_watermark=99)
        for seq in range(4):
            assert box.push(delivery(seq, kind=UpdateKind.UPDATE))
        assert not box.push(delivery(4, kind=UpdateKind.UPDATE))
        assert box.kicked
        assert box.kick_reason is DisconnectReason.SLOW_CONSUMER
        assert stats.outbox_kicks == 1

    def test_kick_discards_bulk_and_queues_typed_disconnect(self):
        box = outbox(max_outbox_frames=4, coalesce_watermark=99)
        box.push(Ack(7))
        for seq in range(5):
            box.push(delivery(seq, kind=UpdateKind.UPDATE))
        # bulk lane discarded; control lane still drains in order and
        # ends with the Disconnect notice — always the last frame
        remaining = box.pop_all()
        assert remaining[0] == Ack(7)
        assert isinstance(remaining[-1], Disconnect)
        assert remaining[-1].reason is DisconnectReason.SLOW_CONSUMER
        assert all(not isinstance(m, Delivery) for m in remaining)

    def test_pushes_after_kick_are_refused_even_control(self):
        box = outbox(max_outbox_frames=4, coalesce_watermark=99)
        for seq in range(5):
            box.push(delivery(seq, kind=UpdateKind.UPDATE))
        assert box.kicked
        assert not box.push(delivery(9, kind=UpdateKind.UPDATE))
        assert not box.push(Ack(1))

    def test_byte_cap_triggers_the_same_policy(self):
        stats = DispatchStats()
        frame_bytes = frames.frame_size(delivery(0, kind=UpdateKind.UPDATE, size=256))
        box = outbox(
            stats,
            max_outbox_frames=1024,
            max_outbox_bytes=3 * frame_bytes,
            coalesce_watermark=99,
        )
        for seq in range(3):
            assert box.push(delivery(seq, kind=UpdateKind.UPDATE, size=256))
        assert not box.push(delivery(3, kind=UpdateKind.UPDATE, size=256))
        assert box.kicked and stats.outbox_kicks == 1

    def test_control_frames_are_always_accepted(self):
        box = outbox(max_outbox_frames=2, coalesce_watermark=99)
        for i in range(10):  # far beyond every bound
            assert box.push(Ack(i))
        assert not box.kicked
        assert box.depth == 10


class TestAccounting:
    def test_peak_gauges_track_high_water_marks(self):
        box = outbox(max_outbox_frames=16, coalesce_watermark=99)
        for seq in range(5):
            box.push(delivery(seq, kind=UpdateKind.UPDATE))
        peak_bytes = box.queued_bytes
        while box.pop_next() is not None:
            pass
        assert box.empty
        assert box.peak_depth == 5
        assert box.peak_bytes == peak_bytes

    def test_queued_bytes_track_encoded_frame_sizes(self):
        box = outbox()
        msgs = [delivery(1), Ack(2)]
        for msg in msgs:
            box.push(msg)
        assert box.queued_bytes == sum(frames.frame_size(m) for m in msgs)

    def test_close_requested_defaults_false(self):
        box = outbox()
        assert not box.close_requested


class TestConfig:
    def test_policy_knobs_lists_every_field(self):
        assert policy_knobs() == (
            "max_outbox_frames",
            "max_outbox_bytes",
            "coalesce_watermark",
            "link_window",
        )

    def test_defaults_are_the_documented_ones(self):
        assert DEFAULT_FLOW.max_outbox_frames == 1024
        assert DEFAULT_FLOW.max_outbox_bytes == 16 * 1024 * 1024
        assert DEFAULT_FLOW.coalesce_watermark == 64
        assert DEFAULT_FLOW.link_window == 0.25

    @pytest.mark.parametrize(
        "knobs",
        [
            {"max_outbox_frames": 1},
            {"max_outbox_bytes": 0},
            {"coalesce_watermark": -1},
            {"link_window": 0.0},
        ],
    )
    def test_invalid_knobs_are_rejected(self, knobs):
        with pytest.raises(ValueError):
            FlowControlConfig(**knobs)
