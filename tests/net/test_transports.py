"""Tests for the async transports (memory pipes and TCP sockets)."""

import asyncio

import pytest

from repro.core.errors import FrameTooLargeError, NotConnectedError
from repro.net.memory import MemoryConnection, MemoryNetwork
from repro.net.tcp import TcpTransport
from repro.wire import frames
from repro.wire.messages import Ack, BcastUpdateRequest, DeliveryMode


def run(coro):
    return asyncio.run(coro)


class TestMemoryTransport:
    def test_dial_accept_roundtrip(self):
        async def main():
            net = MemoryNetwork()
            listener = await net.listen("server")
            dialed = await net.dial("server")
            accepted = await listener.accept()
            await dialed.send(Ack(1))
            assert await accepted.receive() == Ack(1)
            await accepted.send(Ack(2))
            assert await dialed.receive() == Ack(2)

        run(main())

    def test_dial_nobody_refused(self):
        async def main():
            net = MemoryNetwork()
            with pytest.raises(ConnectionRefusedError):
                await net.dial("ghost")

        run(main())

    def test_double_listen_rejected(self):
        async def main():
            net = MemoryNetwork()
            await net.listen("a")
            with pytest.raises(OSError):
                await net.listen("a")

        run(main())

    def test_close_signals_eof(self):
        async def main():
            a, b = MemoryConnection.pair()
            await a.close()
            assert await b.receive() is None
            with pytest.raises(NotConnectedError):
                await a.send(Ack(1))

        run(main())

    def test_fifo_order(self):
        async def main():
            a, b = MemoryConnection.pair()
            for i in range(20):
                await a.send(Ack(i))
            got = [await b.receive() for _ in range(20)]
            assert [m.request_id for m in got] == list(range(20))

        run(main())

    def test_send_many_preserves_order(self):
        async def main():
            a, b = MemoryConnection.pair()
            await a.send_many([Ack(i) for i in range(10)])
            got = [await b.receive() for _ in range(10)]
            assert [m.request_id for m in got] == list(range(10))

        run(main())

    def test_send_many_on_closed_raises(self):
        async def main():
            a, _b = MemoryConnection.pair()
            await a.close()
            with pytest.raises(NotConnectedError):
                await a.send_many([Ack(1)])

        run(main())

    def test_oversized_message_rejected_like_tcp(self, monkeypatch):
        """Parity bugfix: the memory transport enforces MAX_FRAME_SIZE."""
        monkeypatch.setattr(frames, "MAX_FRAME_SIZE", 64)
        async def main():
            a, b = MemoryConnection.pair()
            big = BcastUpdateRequest(1, "g", "o", b"x" * 4096, DeliveryMode.INCLUSIVE)
            with pytest.raises(FrameTooLargeError):
                await a.send(big)
            # the peer saw nothing: the frame was rejected before delivery
            await a.send(Ack(7))
            assert await b.receive() == Ack(7)

        run(main())


class TestTcpTransport:
    def test_roundtrip_over_sockets(self):
        async def main():
            transport = TcpTransport()
            listener = await transport.listen(("127.0.0.1", 0))
            address = listener.address
            dialed = await transport.dial(address)
            accepted = await listener.accept()
            big = BcastUpdateRequest(1, "g", "o", b"x" * 200_000, DeliveryMode.INCLUSIVE)
            await dialed.send(big)
            assert await accepted.receive() == big
            await dialed.close()
            assert await accepted.receive() is None
            await listener.close()

        run(main())

    def test_send_many_batches_one_flush(self):
        async def main():
            transport = TcpTransport()
            listener = await transport.listen(("127.0.0.1", 0))
            dialed = await transport.dial(listener.address)
            accepted = await listener.accept()
            batch = [
                BcastUpdateRequest(i, "g", "o", bytes([i]) * 1000, DeliveryMode.INCLUSIVE)
                for i in range(16)
            ]
            await dialed.send_many(batch)
            got = [await accepted.receive() for _ in range(16)]
            assert got == batch
            await dialed.close()
            await listener.close()

        run(main())

    def test_peer_identity(self):
        async def main():
            transport = TcpTransport()
            listener = await transport.listen(("127.0.0.1", 0))
            dialed = await transport.dial(listener.address)
            accepted = await listener.accept()
            assert accepted.peer.startswith("127.0.0.1:")
            await dialed.close()
            await accepted.close()
            await listener.close()

        run(main())
