"""Sans-io unit tests for the client's reconnect machinery (timers,
backoff, rejoin requests), complementing the scenario tests in
test_reconnect.py."""

from repro.core.client import ClientConfig, ClientCore
from repro.core.clock import ManualClock
from repro.core.events import OpenConnection, StartTimer
from repro.wire.messages import (
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    MemberInfo,
    MemberRole,
    StateSnapshot,
    TransferPolicy,
)
from tests.core.helpers import CoreDriver


def _client(**kwargs):
    config = ClientConfig(
        "c", auto_reconnect=True, reconnect_backoff=1.0,
        reconnect_backoff_max=4.0, **kwargs,
    )
    core = ClientCore(config, ManualClock())
    driver = CoreDriver(core)
    driver.invoke("connect", ("host", 1))
    conn = driver.connect(key="server")
    driver.deliver(conn, HelloReply(server_id="s1"))
    return driver, core, conn


def _join(driver, conn, group="g", next_seqno=3, role=MemberRole.OBSERVER):
    rid = driver.invoke("join_group", group, role, None, True)
    snapshot = StateSnapshot(group, next_seqno - 1, (), (), next_seqno)
    driver.deliver(conn, JoinReply(rid, snapshot, ()))


class TestBackoff:
    def test_disconnect_arms_reconnect_timer(self):
        driver, core, conn = _client()
        driver.close(conn)
        timers = [t for t in driver.timers_started() if t.key == "reconnect"]
        assert timers and timers[-1].delay == 1.0

    def test_backoff_doubles_up_to_max(self):
        driver, core, conn = _client()
        delays = []
        driver.close(conn)
        for _ in range(4):
            delays.append(
                [t for t in driver.effects if isinstance(t, StartTimer)
                 and t.key == "reconnect"][-1].delay
            )
            driver.clear()
            driver.fire_timer("reconnect")
            # the dial fails: synthetic connect + close
            failed_conn = driver.connect(key="server")
            driver.close(failed_conn)
        assert delays == [1.0, 2.0, 4.0, 4.0]

    def test_backoff_resets_on_success(self):
        driver, core, conn = _client()
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        driver.deliver(conn2, HelloReply(server_id="s1"))
        driver.clear()
        driver.close(conn2)
        timers = [t for t in driver.timers_started() if t.key == "reconnect"]
        assert timers[-1].delay == 1.0  # back to the initial backoff

    def test_reconnect_timer_dials_stored_address(self):
        driver, core, conn = _client()
        driver.close(conn)
        effects = driver.fire_timer("reconnect")
        dials = [e for e in effects if isinstance(e, OpenConnection)]
        assert dials and dials[0].address == ("host", 1)
        assert dials[0].key == "server"


class TestRejoin:
    def test_rejoin_reuses_role_and_transfer_cursor(self):
        driver, core, conn = _client()
        _join(driver, conn, next_seqno=7, role=MemberRole.OBSERVER)
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        driver.clear()
        driver.deliver(conn2, HelloReply(server_id="s1"))
        joins = [
            m for m in driver.sent_to(conn2)
            if isinstance(m, JoinGroupRequest)
        ]
        assert len(joins) == 1
        join = joins[0]
        assert join.group == "g"
        assert join.role is MemberRole.OBSERVER
        assert join.notify_membership is True
        assert join.transfer.policy is TransferPolicy.SINCE_SEQNO
        assert join.transfer.since_seqno == 6  # next_seqno - 1

    def test_hello_resent_on_each_reconnect(self):
        driver, core, conn = _client()
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        hellos = [m for m in driver.sent_to(conn2) if isinstance(m, Hello)]
        assert len(hellos) == 1

    def test_no_rejoin_without_views(self):
        driver, core, conn = _client()
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        driver.clear()
        driver.deliver(conn2, HelloReply(server_id="s1"))
        assert not [
            m for m in driver.sent_to(conn2) if isinstance(m, JoinGroupRequest)
        ]
