"""Tests for state-transfer policies (paper §3.2 customized transfer)."""

import pytest

from repro.core.group import Group
from repro.core.transfer import build_snapshot
from repro.wire.messages import (
    ObjectState,
    TransferPolicy,
    TransferSpec,
    UpdateKind,
    UpdateRecord,
)


def _group_with_history():
    group = Group("g", persistent=True, initial_state=(ObjectState("a", b"A"),))
    records = [
        UpdateRecord(0, UpdateKind.UPDATE, "a", b"1", "c", 0.0),
        UpdateRecord(1, UpdateKind.STATE, "b", b"B", "c", 0.0),
        UpdateRecord(2, UpdateKind.UPDATE, "b", b"2", "c", 0.0),
        UpdateRecord(3, UpdateKind.UPDATE, "a", b"3", "c", 0.0),
    ]
    for record in records:
        group.log.append(record)
        group.state.apply(record)
        group.sequencer.fast_forward(record.seqno)
    return group


class TestFull:
    def test_full_materializes_everything(self):
        snapshot = build_snapshot(_group_with_history(), TransferSpec())
        assert snapshot.base_seqno == 3
        assert snapshot.next_seqno == 4
        assert snapshot.updates == ()
        assert dict((o.object_id, o.data) for o in snapshot.objects) == {
            "a": b"A13",
            "b": b"B2",
        }

    def test_full_on_empty_group(self):
        group = Group("g", persistent=False)
        snapshot = build_snapshot(group, TransferSpec())
        assert snapshot.base_seqno == -1
        assert snapshot.next_seqno == 0
        assert snapshot.objects == ()


class TestLatestN:
    def test_latest_n_returns_recent_updates_only(self):
        spec = TransferSpec(policy=TransferPolicy.LATEST_N, last_n=2)
        snapshot = build_snapshot(_group_with_history(), spec)
        assert snapshot.objects == ()
        assert [r.seqno for r in snapshot.updates] == [2, 3]
        assert snapshot.base_seqno == 1

    def test_latest_n_larger_than_history(self):
        spec = TransferSpec(policy=TransferPolicy.LATEST_N, last_n=100)
        snapshot = build_snapshot(_group_with_history(), spec)
        assert len(snapshot.updates) == 4

    def test_latest_zero(self):
        spec = TransferSpec(policy=TransferPolicy.LATEST_N, last_n=0)
        snapshot = build_snapshot(_group_with_history(), spec)
        assert snapshot.updates == ()
        assert snapshot.base_seqno == 3


class TestSelected:
    def test_selected_objects_only(self):
        spec = TransferSpec(policy=TransferPolicy.SELECTED, object_ids=("b",))
        snapshot = build_snapshot(_group_with_history(), spec)
        assert snapshot.objects == (ObjectState("b", b"B2"),)


class TestSinceSeqno:
    def test_reconnection_suffix(self):
        spec = TransferSpec(policy=TransferPolicy.SINCE_SEQNO, since_seqno=1)
        snapshot = build_snapshot(_group_with_history(), spec)
        assert [r.seqno for r in snapshot.updates] == [2, 3]
        assert snapshot.base_seqno == 1

    def test_stale_suffix_falls_back_to_full(self):
        group = _group_with_history()
        group.state.fold(2)
        group.log.trim_to(2)
        spec = TransferSpec(policy=TransferPolicy.SINCE_SEQNO, since_seqno=0)
        snapshot = build_snapshot(group, spec)
        # suffix 1..3 partially reduced away -> full materialized transfer
        assert snapshot.objects != ()
        assert snapshot.base_seqno == 3


class TestNone:
    def test_none_transfers_nothing(self):
        spec = TransferSpec(policy=TransferPolicy.NONE)
        snapshot = build_snapshot(_group_with_history(), spec)
        assert snapshot.objects == ()
        assert snapshot.updates == ()
        assert snapshot.next_seqno == 4


class TestFullSnapshotCache:
    """FULL snapshots are memoized: repeated joins reuse one snapshot
    and one serialization until the group's history changes."""

    def test_repeated_full_builds_return_the_same_snapshot(self):
        group = _group_with_history()
        first = build_snapshot(group, TransferSpec())
        assert build_snapshot(group, TransferSpec()) is first

    def test_repeated_full_builds_encode_once(self):
        from repro.wire import codec
        from repro.wire.messages import StateSnapshot

        group = _group_with_history()
        before = codec.encode_counts().get(StateSnapshot, 0)
        for _ in range(5):
            snapshot = build_snapshot(group, TransferSpec())
            codec.cached_encode(snapshot)  # what the send path does
        delta = codec.encode_counts().get(StateSnapshot, 0) - before
        assert delta == 1, f"expected one pre-warmed encode, saw {delta}"

    def test_log_append_invalidates(self):
        group = _group_with_history()
        stale = build_snapshot(group, TransferSpec())
        record = UpdateRecord(4, UpdateKind.UPDATE, "a", b"9", "c", 0.0)
        group.log.append(record)
        group.state.apply(record)
        group.sequencer.fast_forward(4)
        fresh = build_snapshot(group, TransferSpec())
        assert fresh is not stale
        assert fresh.base_seqno == 4
        assert dict((o.object_id, o.data) for o in fresh.objects)["a"] == b"A139"

    def test_reduction_trim_invalidates(self):
        group = _group_with_history()
        stale = build_snapshot(group, TransferSpec())
        group.log.trim_to(1)
        assert build_snapshot(group, TransferSpec()) is not stale

    def test_other_policies_bypass_the_cache(self):
        group = _group_with_history()
        full = build_snapshot(group, TransferSpec())
        latest = build_snapshot(
            group, TransferSpec(policy=TransferPolicy.LATEST_N, last_n=2)
        )
        assert latest is not full
        assert latest.updates != ()
