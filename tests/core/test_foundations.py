"""Tests for foundation modules: errors, ids, clocks, the effect buffer."""

import pytest

from repro.core import errors
from repro.core.clock import ManualClock, MonotonicClock
from repro.core.errors import (
    CoronaError,
    GroupExistsError,
    LockHeldError,
    NoSuchGroupError,
    error_from_code,
)
from repro.core.events import Notify, ProtocolCore, SendMessage
from repro.core.ids import NO_SEQNO, IdGenerator
from repro.wire.messages import Ack


class TestErrors:
    def test_every_error_has_a_unique_code(self):
        codes = [
            getattr(errors, name).code
            for name in errors.__all__
            if isinstance(getattr(errors, name), type)
            and issubclass(getattr(errors, name), CoronaError)
        ]
        assert len(codes) == len(set(codes))

    def test_error_from_code_roundtrip(self):
        for cls in (NoSuchGroupError, GroupExistsError, LockHeldError):
            rebuilt = error_from_code(cls.code, "details here")
            assert type(rebuilt) is cls
            assert str(rebuilt) == "details here"

    def test_unknown_code_degrades_to_base(self):
        err = error_from_code("corona.from-the-future", "hm")
        assert type(err) is CoronaError

    def test_empty_message_uses_code(self):
        assert str(error_from_code("corona.no_such_group")) == "corona.no_such_group"

    def test_all_errors_catchable_as_corona_error(self):
        with pytest.raises(CoronaError):
            raise NoSuchGroupError("x")


class TestIds:
    def test_generator_is_deterministic(self):
        a, b = IdGenerator("srv"), IdGenerator("srv")
        assert [a.next_id() for _ in range(3)] == [b.next_id() for _ in range(3)]
        assert a.next_id() == "srv-3"

    def test_next_int(self):
        gen = IdGenerator()
        assert gen.next_int() == 0
        assert gen.next_int() == 1

    def test_sentinel(self):
        assert NO_SEQNO == -1


class TestClocks:
    def test_monotonic_clock_advances(self):
        clock = MonotonicClock()
        assert clock.now() <= clock.now()

    def test_manual_clock(self):
        clock = ManualClock(start=5.0)
        assert clock.now() == 5.0
        clock.advance(2.5)
        assert clock.now() == 7.5
        clock.set(10.0)
        assert clock.now() == 10.0

    def test_manual_clock_never_goes_backwards(self):
        clock = ManualClock(start=5.0)
        with pytest.raises(ValueError):
            clock.advance(-1.0)
        with pytest.raises(ValueError):
            clock.set(1.0)


class TestProtocolCore:
    def test_effects_drain_per_event(self):
        class Chatty(ProtocolCore):
            def handle_message(self, conn, message):
                self.send(conn, message)
                self.emit(Notify("saw", message))

        core = Chatty()
        first = core.on_message(1, Ack(1))
        assert [type(e) for e in first] == [SendMessage, Notify]
        # the buffer was drained: the next event starts clean
        assert core.on_message(1, Ack(2)) != first
        assert len(core.on_timer("t")) == 0

    def test_drain_collects_out_of_band_emissions(self):
        core = ProtocolCore()
        core.emit(Notify("a", 1))
        core.emit(Notify("b", 2))
        drained = core.drain()
        assert [e.kind for e in drained] == ["a", "b"]
        assert core.drain() == []

    def test_default_handlers_are_noops(self):
        core = ProtocolCore()
        assert core.on_connected(1, peer="x") == []
        assert core.on_message(1, Ack(1)) == []
        assert core.on_timer("k") == []
        assert core.on_closed(1) == []
