"""Model-based property test: the server core vs a reference model.

Hypothesis drives random operation sequences (joins, leaves, both kinds
of broadcast, reductions, disconnects) against a ServerCore, while a
simple in-test model tracks what the shared state and membership *should*
be.  After every step the core must agree with the model, and at the end
every connected member's delivered stream must reconstruct the model
state byte-for-byte.
"""

from collections import defaultdict

from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    rule,
)

from repro.core.clock import ManualClock
from repro.core.server import ServerConfig, ServerCore
from repro.wire.messages import (
    BcastStateRequest,
    BcastUpdateRequest,
    CreateGroupRequest,
    Delivery,
    Hello,
    JoinGroupRequest,
    LeaveGroupRequest,
    ReduceLogRequest,
)
from tests.core.helpers import CoreDriver

CLIENTS = ["c0", "c1", "c2", "c3"]
OBJECTS = ["alpha", "beta"]


class ServerModelMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.clock = ManualClock()
        self.driver = CoreDriver(ServerCore(ServerConfig(persist=False), self.clock))
        self.conns = {}
        self.request_id = 100
        # the reference model
        self.members: set[str] = set()
        self.objects: dict[str, bytes] = {}
        self.deliveries: dict[str, list] = defaultdict(list)
        self.joined_at: dict[str, int] = {}
        self.seqno = 0

    def _rid(self):
        self.request_id += 1
        return self.request_id

    @initialize()
    def setup(self):
        for client in CLIENTS:
            conn = self.driver.connect()
            self.driver.deliver(conn, Hello(client_id=client))
            self.conns[client] = conn
        first = CLIENTS[0]
        self.driver.deliver(self.conns[first], CreateGroupRequest(self._rid(), "g", True))

    # -- rules ---------------------------------------------------------------

    @rule(client=st.sampled_from(CLIENTS))
    def join(self, client):
        effects = self.driver.deliver(
            self.conns[client], JoinGroupRequest(self._rid(), "g")
        )
        if client in self.members:
            assert any(
                getattr(m, "code", "") == "corona.already_member"
                for m in self.driver.sent_to(self.conns[client], effects)
            )
        else:
            self.members.add(client)
            self.joined_at[client] = self.seqno

    @rule(client=st.sampled_from(CLIENTS))
    def leave(self, client):
        effects = self.driver.deliver(
            self.conns[client], LeaveGroupRequest(self._rid(), "g")
        )
        if client in self.members:
            self.members.discard(client)
        else:
            assert any(
                getattr(m, "code", "") == "corona.not_a_member"
                for m in self.driver.sent_to(self.conns[client], effects)
            )

    @rule(
        client=st.sampled_from(CLIENTS),
        obj=st.sampled_from(OBJECTS),
        data=st.binary(min_size=1, max_size=8),
    )
    def bcast_update(self, client, obj, data):
        effects = self.driver.deliver(
            self.conns[client],
            BcastUpdateRequest(self._rid(), "g", obj, data),
        )
        if client in self.members:
            self.objects[obj] = self.objects.get(obj, b"") + data
            self._record_deliveries(effects)
            self.seqno += 1

    @rule(
        client=st.sampled_from(CLIENTS),
        obj=st.sampled_from(OBJECTS),
        data=st.binary(min_size=1, max_size=8),
    )
    def bcast_state(self, client, obj, data):
        effects = self.driver.deliver(
            self.conns[client],
            BcastStateRequest(self._rid(), "g", obj, data),
        )
        if client in self.members:
            self.objects[obj] = data
            self._record_deliveries(effects)
            self.seqno += 1

    @rule(client=st.sampled_from(CLIENTS))
    def reduce(self, client):
        self.driver.deliver(self.conns[client], ReduceLogRequest(self._rid(), "g"))

    def _record_deliveries(self, effects):
        for send in self.driver.all_sends(effects):
            if isinstance(send.message, Delivery):
                self.deliveries[send.conn].append(send.message.update)

    # -- invariants ---------------------------------------------------------------

    @invariant()
    def membership_matches(self):
        group = self.driver.core.groups.get("g")
        assert group is not None  # persistent: survives null membership
        assert {m.client_id for m in group.members()} == self.members

    @invariant()
    def state_matches_model(self):
        group = self.driver.core.groups["g"]
        for obj, expected in self.objects.items():
            assert group.state.get(obj).materialized() == expected

    @invariant()
    def log_contiguous(self):
        group = self.driver.core.groups["g"]
        records = group.log.records()
        for a, b in zip(records, records[1:]):
            assert b.seqno == a.seqno + 1
        assert group.log.next_seqno == self.seqno

    @invariant()
    def deliveries_are_gapless_per_member(self):
        # every member's delivered seqnos are the contiguous range from
        # its join point onward (while it stayed a member)
        for client in self.members:
            conn = self.conns[client]
            seqnos = [u.seqno for u in self.deliveries[conn]]
            tail = [s for s in seqnos if s >= self.joined_at[client]]
            assert tail == list(range(self.joined_at[client], self.seqno))


TestServerModel = ServerModelMachine.TestCase
TestServerModel.settings = settings(
    max_examples=60, stateful_step_count=30, deadline=None
)
