"""Hypothesis property: optimistic parallel execution ≡ serial execution.

For ANY stream of broadcast commands with ANY object-id overlap (random
conflicts), running the stream through a batched core with the optimistic
scheduler must produce exactly the serial core's output: the same effect
stream (deliveries, acks, WAL appends — same frames, same order), the
same sequence numbers, and the same final materialized state.  Barrier
commands (``bcastState``) are mixed in to exercise the window flush.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ManualClock
from repro.core.events import AppendWal, SendMessage
from repro.core.server import ServerConfig, ServerCore
from repro.wire.messages import (
    BcastStateRequest,
    BcastUpdateRequest,
    Delivery,
    Hello,
    JoinGroupRequest,
)
from tests.core.helpers import CoreDriver

CLIENTS = ("alice", "bob", "carol")
#: A small pool forces real overlap; hypothesis picks how much.
OBJECTS = ("o0", "o1", "o2", "o3", "hot")

commands = st.lists(
    st.tuples(
        st.sampled_from(CLIENTS),
        st.sampled_from(OBJECTS),
        st.binary(min_size=0, max_size=6),
        st.booleans(),  # True -> bcastState (a whole-state barrier)
    ),
    min_size=1,
    max_size=24,
)


def _run(stream, exec_lanes, window=64):
    config = ServerConfig(
        server_id="s1", exec_lanes=exec_lanes, exec_window=window, persist=True
    )
    driver = CoreDriver(ServerCore(config, ManualClock()))
    conns = {}
    for i, name in enumerate(CLIENTS):
        conn = driver.connect()
        driver.deliver(conn, Hello(client_id=name))
        if i == 0:
            from repro.wire.messages import CreateGroupRequest

            driver.deliver(conn, CreateGroupRequest(1, "g"))
        driver.deliver(conn, JoinGroupRequest(2, "g"))
        conns[name] = conn
    before = len(driver.effects)

    if exec_lanes:
        driver.core.begin_batch()
    for rid, (sender, object_id, data, is_state) in enumerate(stream, start=10):
        cls = BcastStateRequest if is_state else BcastUpdateRequest
        driver.deliver(conns[sender], cls(rid, "g", object_id, data))
    if exec_lanes:
        driver.effects.extend(driver.core.end_batch())

    effects = driver.effects[before:]
    group = driver.core.groups["g"]
    sends = [
        (e.conn, e.message)
        for e in effects
        if isinstance(e, SendMessage)
    ]
    wal = [(e.group, e.seqno, e.record) for e in effects if isinstance(e, AppendWal)]
    seqnos = [
        m.update.seqno for _, m in sends
        if isinstance(m, Delivery) and _ == conns["alice"]
    ]
    return sends, wal, seqnos, group.state.materialize_all()


@given(commands)
@settings(deadline=None, max_examples=60)
def test_parallel_output_equals_serial(stream):
    serial = _run(stream, exec_lanes=0)
    parallel = _run(stream, exec_lanes=3)
    assert parallel == serial


@given(commands, st.integers(1, 6))
@settings(deadline=None, max_examples=30)
def test_equivalence_holds_for_any_lane_count(stream, lanes):
    assert _run(stream, exec_lanes=lanes) == _run(stream, exec_lanes=0)
