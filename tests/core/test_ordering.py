"""Tests for sequencer, FIFO checker, and vector clocks."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.ordering import FifoChecker, Sequencer, VectorClock


class TestSequencer:
    def test_monotone_allocation(self):
        seq = Sequencer()
        assert [seq.allocate() for _ in range(4)] == [0, 1, 2, 3]

    def test_fast_forward(self):
        seq = Sequencer()
        seq.fast_forward(10)
        assert seq.allocate() == 11

    def test_fast_forward_never_goes_back(self):
        seq = Sequencer(next_seqno=20)
        seq.fast_forward(5)
        assert seq.allocate() == 20


class TestFifoChecker:
    def test_in_order_ok(self):
        checker = FifoChecker()
        checker.observe("a", 1)
        checker.observe("a", 5)
        checker.observe("b", 2)
        assert checker.last_from("a") == 5

    def test_regression_raises(self):
        checker = FifoChecker()
        checker.observe("a", 5)
        with pytest.raises(AssertionError):
            checker.observe("a", 3)

    def test_duplicate_raises(self):
        checker = FifoChecker()
        checker.observe("a", 5)
        with pytest.raises(AssertionError):
            checker.observe("a", 5)

    def test_unknown_sender(self):
        assert FifoChecker().last_from("nobody") is None


class TestVectorClock:
    def test_tick_advances_component(self):
        clock = VectorClock().tick("p").tick("p").tick("q")
        assert clock.counters["p"] == 2
        assert clock.counters["q"] == 1

    def test_merge_is_componentwise_max(self):
        a = VectorClock({"p": 3, "q": 1})
        b = VectorClock({"q": 5, "r": 2})
        merged = a.merge(b)
        assert merged == VectorClock({"p": 3, "q": 5, "r": 2})

    def test_dominates(self):
        a = VectorClock({"p": 2, "q": 1})
        b = VectorClock({"p": 1, "q": 1})
        assert a.dominates(b)
        assert not b.dominates(a)

    def test_missing_components_are_zero(self):
        a = VectorClock({"p": 1})
        b = VectorClock({})
        assert a.dominates(b)
        assert a == VectorClock({"p": 1, "q": 0})

    def test_concurrency(self):
        a = VectorClock({"p": 2, "q": 0})
        b = VectorClock({"p": 0, "q": 2})
        assert a.concurrent_with(b)
        assert not a.dominates(b)

    def test_hash_ignores_zero_components(self):
        assert hash(VectorClock({"p": 1, "q": 0})) == hash(VectorClock({"p": 1}))

    def test_ordered_trace_accepted(self):
        c1 = VectorClock({"p": 1})
        c2 = c1.tick("p")
        c3 = c2.tick("q")
        assert VectorClock.ordered([(c1, "a"), (c2, "b"), (c3, "c")])

    def test_causality_violation_detected(self):
        c1 = VectorClock({"p": 1})
        c2 = c1.tick("p")
        assert not VectorClock.ordered([(c2, "late"), (c1, "early")])

    def test_concurrent_events_any_order(self):
        a = VectorClock({"p": 1})
        b = VectorClock({"q": 1})
        assert VectorClock.ordered([(a, "x"), (b, "y")])
        assert VectorClock.ordered([(b, "y"), (a, "x")])

    @given(
        st.lists(
            st.sampled_from(["p", "q", "r"]), min_size=1, max_size=30
        )
    )
    def test_single_timeline_always_ordered(self, processes):
        """Events produced sequentially on one causal chain stay ordered."""
        clock = VectorClock()
        trace = []
        for process in processes:
            clock = clock.tick(process)
            trace.append((clock, process))
        assert VectorClock.ordered(trace)
