"""Property-style coverage for the primitives tracecheck trusts:
FifoChecker must reject any per-sender reordering, and VectorClock must
detect manufactured causality violations."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.ordering import FifoChecker, Sequencer, VectorClock


# --------------------------------------------------------------------------
# FifoChecker
# --------------------------------------------------------------------------

@given(st.lists(st.integers(0, 10_000), min_size=1, max_size=60, unique=True))
@settings(deadline=None, max_examples=200)
def test_fifo_accepts_any_increasing_run(seqnos):
    checker = FifoChecker()
    for seqno in sorted(seqnos):
        checker.observe("sender", seqno)
    assert checker.last_from("sender") == max(seqnos)


@given(
    st.lists(st.integers(0, 10_000), min_size=2, max_size=60, unique=True),
    st.randoms(use_true_random=False),
)
@settings(deadline=None, max_examples=200)
def test_fifo_rejects_any_reordering(seqnos, rng):
    """Every non-sorted permutation has a descent, and the checker must
    raise at its first descent."""
    shuffled = list(seqnos)
    rng.shuffle(shuffled)
    if shuffled == sorted(shuffled):
        shuffled[0], shuffled[1] = shuffled[1], shuffled[0]
    checker = FifoChecker()
    with pytest.raises(AssertionError):
        for seqno in shuffled:
            checker.observe("sender", seqno)


@given(
    st.dictionaries(
        st.sampled_from(["a", "b", "c", "d"]),
        st.lists(st.integers(0, 1000), min_size=1, max_size=20, unique=True),
        min_size=2,
        max_size=4,
    )
)
@settings(deadline=None, max_examples=100)
def test_fifo_senders_are_independent(per_sender):
    """Interleaving senders never trips the checker as long as each
    sender's own subsequence is increasing."""
    checker = FifoChecker()
    streams = {sender: sorted(seqs) for sender, seqs in per_sender.items()}
    while any(streams.values()):
        for sender in sorted(streams):
            if streams[sender]:
                checker.observe(sender, streams[sender].pop(0))
    for sender, seqs in per_sender.items():
        assert checker.last_from(sender) == max(seqs)


def test_fifo_rejects_duplicate_delivery():
    checker = FifoChecker()
    checker.observe("s", 5)
    with pytest.raises(AssertionError):
        checker.observe("s", 5)


# --------------------------------------------------------------------------
# VectorClock
# --------------------------------------------------------------------------

def _causal_history(ops):
    """Run a schedule of (proc, peer_or_None) ops; return per-event clocks.

    Each op makes *proc* tick (a send); when *peer* is given, proc first
    merges peer's latest clock (a receive) — building a valid causal
    history whose event list is in happens-before-consistent order.
    """
    current = {}
    events = []
    for proc, peer in ops:
        clock = current.get(proc, VectorClock())
        if peer is not None and peer in current:
            clock = clock.merge(current[peer])
        clock = clock.tick(proc)
        current[proc] = clock
        events.append((clock, proc))
    return events


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["p", "q", "r"]),
            st.one_of(st.none(), st.sampled_from(["p", "q", "r"])),
        ),
        min_size=2,
        max_size=30,
    )
)
@settings(deadline=None, max_examples=200)
def test_causally_consistent_trace_is_ordered(ops):
    events = _causal_history(ops)
    assert VectorClock.ordered(events)


@given(
    st.lists(
        st.tuples(
            st.sampled_from(["p", "q"]),
            st.one_of(st.none(), st.sampled_from(["p", "q"])),
        ),
        min_size=0,
        max_size=10,
    )
)
@settings(deadline=None, max_examples=100)
def test_manufactured_causality_violation_is_detected(ops):
    """Append a dependent pair e1 -> e2 to any valid history, deliver them
    swapped: ordered() must flag the trace."""
    events = _causal_history(ops)
    base = events[-1][0] if events else VectorClock()
    e1 = base.tick("p")
    e2 = e1.merge(e1).tick("q")  # e2 causally after e1
    assert e2.dominates(e1) and not e1.dominates(e2)
    assert not VectorClock.ordered(events + [(e2, "q"), (e1, "p")])


def test_concurrent_events_any_order_is_fine():
    a = VectorClock().tick("p")
    b = VectorClock().tick("q")
    assert a.concurrent_with(b)
    assert VectorClock.ordered([(a, "p"), (b, "q")])
    assert VectorClock.ordered([(b, "q"), (a, "p")])


@given(st.lists(st.sampled_from(["p", "q", "r"]), min_size=1, max_size=20))
@settings(deadline=None, max_examples=100)
def test_merge_is_commutative_and_deterministic(procs):
    left = VectorClock()
    right = VectorClock()
    for i, proc in enumerate(procs):
        if i % 2:
            left = left.tick(proc)
        else:
            right = right.tick(proc)
    merged_lr = left.merge(right)
    merged_rl = right.merge(left)
    assert merged_lr == merged_rl
    # DET003 regression: the merged mapping's iteration order is sorted,
    # so downstream encodings cannot depend on merge direction.
    assert list(merged_lr.counters) == sorted(merged_lr.counters)
    assert list(merged_lr.counters) == list(merged_rl.counters)


# --------------------------------------------------------------------------
# Sequencer (the mechanism the invariants hold against)
# --------------------------------------------------------------------------

def test_sequencer_fast_forward_never_reissues():
    seq = Sequencer()
    assert [seq.allocate() for _ in range(3)] == [0, 1, 2]
    seq.fast_forward(10)
    assert seq.allocate() == 11
    seq.fast_forward(5)  # stale recovery info must not rewind
    assert seq.allocate() == 12
