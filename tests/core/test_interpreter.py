"""Unit tests for the shared effect interpreter (repro.core.interpreter):
middleware ordering, unknown-effect errors, fault injection, and batch
staging semantics, independent of any real host."""

import logging

import pytest

from repro.core.events import (
    CancelTimer,
    Effect,
    Notify,
    SendMessage,
    SendMulticast,
    ShutDown,
    StartTimer,
    TruncateWal,
)
from repro.core.interpreter import (
    EffectBackend,
    EffectInterpreter,
    FaultInjector,
    UnknownEffectError,
    build_interpreter,
    metrics_middleware,
    trace_middleware,
)


class RecordingBackend(EffectBackend):
    """Backend that records every call; conns outside *known* are gone."""

    def __init__(self, known_conns=(1, 2)):
        self.known = set(known_conns)
        self.actions = []

    def deliver(self, conn, message):
        if conn not in self.known:
            return False
        self.actions.append(("deliver", conn, message))
        return True

    def deliver_batch(self, conn, messages):
        if conn not in self.known:
            return False
        self.actions.append(("batch", conn, tuple(messages)))
        return True

    def start_timer(self, key, delay):
        self.actions.append(("start_timer", key, delay))

    def cancel_timer(self, key):
        self.actions.append(("cancel_timer", key))

    def open_connection(self, address, key):
        self.actions.append(("open", address, key))

    def close_connection(self, conn):
        self.actions.append(("close", conn))

    def notify(self, kind, payload):
        self.actions.append(("notify", kind, payload))

    def shutdown(self, reason):
        self.actions.append(("shutdown", reason))


class TestDispatch:
    def test_unregistered_effect_subclass_raises(self):
        class Orphan(Effect):
            pass

        interp = EffectInterpreter()
        with pytest.raises(UnknownEffectError):
            interp.dispatch(Orphan())

    def test_non_effect_object_raises_type_error(self):
        interp = build_interpreter(RecordingBackend())
        with pytest.raises(TypeError):
            interp.execute([object()])

    def test_subclass_resolves_through_mro_and_is_cached(self):
        class FancyNotify(Notify):
            pass

        backend = RecordingBackend()
        interp = build_interpreter(backend)
        interp.execute([FancyNotify("k", 1)])
        assert backend.actions == [("notify", "k", 1)]
        # resolved once: the subclass now has its own registry entry
        assert FancyNotify in interp._chains

    def test_register_batch_requires_register_first(self):
        interp = EffectInterpreter()
        with pytest.raises(LookupError):
            interp.register_batch(
                SendMessage, key=lambda e: e.conn, flush=lambda k, run: None
            )

    def test_drop_counters_and_warning(self, caplog):
        backend = RecordingBackend(known_conns=(1,))
        interp = build_interpreter(backend)
        with caplog.at_level(logging.WARNING, logger="repro.core.interpreter"):
            interp.execute([
                SendMessage(1, "ok"),
                SendMessage(9, "lost"),
                SendMulticast((1, 9, 8), "mc"),
            ])
        assert interp.stats.sends == 1
        assert interp.stats.send_drops == 1
        assert interp.stats.multicast_fanout == 1
        assert interp.stats.multicast_drops == 2
        assert backend.actions[0] == ("deliver", 1, "ok")
        assert any("unknown or kicked connection" in r.message for r in caplog.records)


class TestBatching:
    def test_consecutive_sends_to_one_conn_flush_once(self):
        backend = RecordingBackend(known_conns=(1, 2))
        interp = build_interpreter(backend)
        interp.execute([
            SendMessage(1, "a"),
            SendMessage(1, "b"),
            SendMessage(2, "c"),
        ])
        assert backend.actions == [
            ("batch", 1, ("a", "b")),
            ("deliver", 2, "c"),
        ]
        assert interp.stats.sends == 3

    def test_non_consecutive_sends_do_not_coalesce(self):
        backend = RecordingBackend(known_conns=(1, 2))
        interp = build_interpreter(backend)
        interp.execute([
            SendMessage(1, "a"),
            SendMessage(2, "b"),
            SendMessage(1, "c"),
        ])
        assert backend.actions == [
            ("deliver", 1, "a"),
            ("deliver", 2, "b"),
            ("deliver", 1, "c"),
        ]

    def test_middleware_sees_each_staged_effect_individually(self):
        backend = RecordingBackend()
        seen = []
        interp = build_interpreter(backend, [trace_middleware(seen.append)])
        run = [SendMessage(1, "a"), SendMessage(1, "b")]
        interp.execute(run)
        assert seen == run
        assert backend.actions == [("batch", 1, ("a", "b"))]

    def test_dropped_staged_effects_are_excluded_from_flush(self):
        backend = RecordingBackend()
        faults = FaultInjector()
        faults.drop(SendMessage, lambda e: e.message == "b")
        interp = build_interpreter(backend, [faults])
        interp.execute([SendMessage(1, "a"), SendMessage(1, "b")])
        assert backend.actions == [("batch", 1, ("a",))]
        assert faults.dropped == [SendMessage(1, "b")]

    def test_fully_dropped_run_never_reaches_backend(self):
        backend = RecordingBackend()
        faults = FaultInjector()
        faults.drop(SendMessage)
        interp = build_interpreter(backend, [faults])
        interp.execute([SendMessage(1, "a"), SendMessage(1, "b")])
        assert backend.actions == []


class TestMiddleware:
    def test_registration_order_outermost_first(self):
        order = []

        def make(tag):
            def middleware(effect, nxt):
                order.append(f"{tag}-pre")
                nxt(effect)
                order.append(f"{tag}-post")

            return middleware

        interp = build_interpreter(RecordingBackend(), [make("a"), make("b")])
        interp.execute([Notify("k", None)])
        assert order == ["a-pre", "b-pre", "b-post", "a-post"]

    def test_middleware_may_drop_by_not_calling_next(self):
        backend = RecordingBackend()

        def swallow_timers(effect, nxt):
            if type(effect) is not StartTimer:
                nxt(effect)

        interp = build_interpreter(backend, [swallow_timers])
        interp.execute([StartTimer("t", 1.0), CancelTimer("t")])
        assert backend.actions == [("cancel_timer", "t")]
        assert interp.stats.timers_started == 0
        assert interp.stats.timers_cancelled == 1

    def test_metrics_middleware_counts_per_type(self):
        counters = {}
        interp = build_interpreter(
            RecordingBackend(), [metrics_middleware(counters)]
        )
        interp.execute([
            StartTimer("t", 1.0),
            StartTimer("u", 1.0),
            ShutDown("bye"),
        ])
        assert counters == {"StartTimer": 2, "ShutDown": 1}

    def test_fault_injector_fail_raises_limited_times(self):
        backend = RecordingBackend()
        faults = FaultInjector()
        faults.fail(TruncateWal, RuntimeError("disk on fire"), times=1)
        interp = build_interpreter(backend, [faults])
        with pytest.raises(RuntimeError):
            interp.execute([TruncateWal("g", 3)])
        interp.execute([TruncateWal("g", 4)])  # rule exhausted
        assert interp.stats.wal_truncates == 1
