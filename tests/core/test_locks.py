"""Tests for the per-object lock service."""

import pytest

from repro.core.errors import LockNotHeldError
from repro.core.locks import LockGrant, LockTable


@pytest.fixture
def table():
    return LockTable()


class TestAcquire:
    def test_free_lock_granted(self, table):
        assert table.acquire("o", "alice", 1, blocking=True) is True
        assert table.holder("o") == "alice"

    def test_reacquire_own_lock_granted(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        assert table.acquire("o", "alice", 2, blocking=True) is True

    def test_nonblocking_denied_when_held(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        assert table.acquire("o", "bob", 2, blocking=False) is False
        assert table.waiting("o") == 0

    def test_blocking_queues_when_held(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        assert table.acquire("o", "bob", 2, blocking=True) is None
        assert table.waiting("o") == 1

    def test_independent_objects(self, table):
        table.acquire("a", "alice", 1, blocking=True)
        assert table.acquire("b", "bob", 2, blocking=True) is True


class TestRelease:
    def test_release_frees_lock(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        assert table.release("o", "alice") is None
        assert table.holder("o") is None

    def test_release_hands_to_next_waiter_fifo(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        table.acquire("o", "bob", 2, blocking=True)
        table.acquire("o", "carol", 3, blocking=True)
        grant = table.release("o", "alice")
        assert grant == LockGrant("o", "bob", 2)
        assert table.holder("o") == "bob"
        grant = table.release("o", "bob")
        assert grant == LockGrant("o", "carol", 3)

    def test_release_not_held_raises(self, table):
        with pytest.raises(LockNotHeldError):
            table.release("o", "alice")

    def test_release_by_non_holder_raises(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        with pytest.raises(LockNotHeldError):
            table.release("o", "bob")


class TestReleaseAll:
    def test_strips_held_locks_and_grants(self, table):
        table.acquire("a", "alice", 1, blocking=True)
        table.acquire("b", "alice", 2, blocking=True)
        table.acquire("a", "bob", 3, blocking=True)
        grants = table.release_all("alice")
        assert grants == [LockGrant("a", "bob", 3)]
        assert table.holder("a") == "bob"
        assert table.holder("b") is None

    def test_removes_client_from_wait_queues(self, table):
        table.acquire("o", "alice", 1, blocking=True)
        table.acquire("o", "bob", 2, blocking=True)
        table.acquire("o", "carol", 3, blocking=True)
        table.release_all("bob")
        grant = table.release("o", "alice")
        assert grant == LockGrant("o", "carol", 3)

    def test_noop_for_unknown_client(self, table):
        assert table.release_all("ghost") == []
