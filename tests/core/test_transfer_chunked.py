"""Chunked/resumable state transfer: planner, server, client, and the
byte-identity property (contract: docs/protocol.md §3.5).

Three layers of sans-io unit tests plus a Hypothesis property:

* :class:`OutgoingTransfer` — windowing, ack clocking, interval-gated
  bandwidth adaptation, pause/resume;
* the server core — marker replies, chunk pumping, resume handling,
  TTL expiry;
* the client core — reassembly, catch-up buffering, progress events;
* property — for arbitrary chunk configurations, update interleavings
  and disconnect points, a chunked join converges to state byte-identical
  to a monolithic FULL join.
"""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.client import ClientConfig, ClientCore
from repro.core.clock import ManualClock
from repro.core.events import (
    NOTIFY_TRANSFER_PROGRESS,
    CloseConnection,
    Notify,
    SendMessage,
    StartTimer,
)
from repro.core.server import ServerConfig, ServerCore
from repro.core.transfer import OutgoingTransfer, TransferConfig, chunk_marker
from repro.wire import frames
from repro.wire.messages import (
    SNAP_CHUNKED,
    SNAP_DELTA,
    BcastUpdateRequest,
    ChunkAck,
    CreateGroupRequest,
    Delivery,
    ErrorReply,
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    MemberRole,
    ObjectState,
    StateChunk,
    StateSnapshot,
    TransferPolicy,
    TransferResume,
    TransferSpec,
)
from tests.core.helpers import CoreDriver


def _snapshot(payload_bytes=1000):
    return StateSnapshot(
        "g", 0, (ObjectState("o", b"\xab" * payload_bytes),), (), 1
    )


def _transfer(payload_bytes=1000, **cfg_kwargs):
    defaults = dict(
        chunk_threshold_bytes=0, initial_chunk_bytes=64,
        chunk_floor_bytes=16, chunk_ceiling_bytes=256,
        inflight_chunks=2, target_chunk_seconds=1.0,
        bandwidth_gain=0.5, resume_ttl=30.0,
    )
    defaults.update(cfg_kwargs)
    transfer = OutgoingTransfer(
        group="g", client="c", transfer_id=1,
        snapshot=_snapshot(payload_bytes),
        config=TransferConfig(**defaults), now=0.0,
    )
    return transfer


class TestTransferConfig:
    def test_rejects_bad_knobs(self):
        with pytest.raises(ValueError):
            TransferConfig(chunk_floor_bytes=0)
        with pytest.raises(ValueError):
            TransferConfig(chunk_floor_bytes=64, chunk_ceiling_bytes=32)
        with pytest.raises(ValueError):
            TransferConfig(initial_chunk_bytes=1)  # below the floor
        with pytest.raises(ValueError):
            TransferConfig(inflight_chunks=0)
        with pytest.raises(ValueError):
            TransferConfig(bandwidth_gain=0.0)
        with pytest.raises(ValueError):
            TransferConfig(resume_ttl=0.0)


class TestOutgoingTransfer:
    def test_initial_window(self):
        t = _transfer()
        chunks = t.next_chunks()
        # exactly one in-flight window of initial-size chunks
        assert [c.offset for c in chunks] == [0, 64]
        assert all(len(c.data) == 64 for c in chunks)
        assert all(c.total_bytes == t.total_bytes for c in chunks)
        assert t.next_chunks() == []  # window full until an ack

    def test_ack_releases_the_window(self):
        t = _transfer()
        t.next_chunks()
        released = t.on_ack(64, now=0.1)
        assert [c.offset for c in released] == [128]
        assert t.acked_offset == 64

    def test_stale_and_duplicate_acks_ignored(self):
        t = _transfer()
        t.next_chunks()
        t.on_ack(64, now=0.1)
        assert t.on_ack(64, now=0.2) == []
        assert t.on_ack(0, now=0.3) == []
        assert t.acked_offset == 64

    def test_reassembly_is_byte_identical(self):
        t = _transfer(payload_bytes=777)  # not a chunk multiple
        received = bytearray()
        chunks = t.next_chunks()
        while chunks:
            for chunk in chunks:
                assert chunk.offset == len(received)
                received += chunk.data
            chunks = t.on_ack(len(received), now=0.0)
        assert bytes(received) == t.payload
        assert t.done
        # `last` marks exactly the final chunk
        assert received[-1:] == t.payload[-1:]

    def test_last_flag_only_on_final_chunk(self):
        t = _transfer(payload_bytes=300)
        seen = []
        chunks = t.next_chunks()
        got = 0
        while chunks:
            for chunk in chunks:
                got += len(chunk.data)
                seen.append(chunk.last)
            chunks = t.on_ack(got, now=0.0)
        assert seen[-1] is True
        assert not any(seen[:-1])

    def test_adaptation_waits_for_a_full_interval(self):
        t = _transfer(payload_bytes=4000)
        t.next_chunks()
        # acks inside the sample interval accumulate, no sample yet
        t.on_ack(64, now=0.5)
        assert t.bandwidth == 0.0
        assert t.chunk_bytes == 64
        # the interval closes: one honest sample over the whole window
        t.on_ack(128, now=1.0)
        assert t.bandwidth == pytest.approx(128.0)  # 128 bytes / 1.0 s
        assert t.chunk_bytes == 128  # bw * target_chunk_seconds, clamped

    def test_ack_burst_cannot_inflate_the_estimate(self):
        # Ack compression: a burst of acks microseconds apart must fold
        # into one sample, not multiply the estimate per ack.
        t = _transfer(payload_bytes=4000)
        t.next_chunks()
        for offset in (64, 128, 192):
            t.on_ack(offset, now=0.999)
        assert t.bandwidth == 0.0  # still inside the interval
        t.on_ack(256, now=1.0)
        assert t.bandwidth == pytest.approx(256.0)

    def test_chunk_size_clamped_to_floor_and_ceiling(self):
        t = _transfer(payload_bytes=100_000)
        t.next_chunks()
        t.on_ack(128, now=1000.0)  # glacial: sample ~0.128 B/s
        assert t.chunk_bytes == 16  # floor
        fast = _transfer(payload_bytes=100_000)
        fast.next_chunks()
        fast.on_ack(128, now=1e-4)  # 1.28 MB/s sample... but gated
        assert fast.bandwidth == 0.0
        fast.on_ack(100_000, now=1.0)
        assert fast.chunk_bytes == 256  # ceiling

    def test_pause_blocks_planning_and_arms_ttl(self):
        t = _transfer()
        t.next_chunks()
        t.pause(now=5.0)
        assert t.expires_at == 35.0
        assert t.next_chunks() == []
        assert t.on_ack(64, now=6.0) == []

    def test_resume_rewinds_without_resending_acked_bytes(self):
        t = _transfer(payload_bytes=1000)
        t.next_chunks()
        t.on_ack(64, now=0.1)
        t.pause(now=1.0)
        assert t.resume(offset=64, now=2.0) is True
        assert t.paused is False and t.expires_at is None
        assert (t.sent_offset, t.acked_offset) == (64, 64)
        assert [c.offset for c in t.next_chunks()] == [64, 128]

    def test_resume_rejects_an_offset_never_sent(self):
        t = _transfer()
        t.next_chunks()  # sent through 128
        assert t.resume(offset=4096, now=0.0) is False
        assert t.resume(offset=-1, now=0.0) is False


class TestChunkMarker:
    def test_marker_is_empty_and_flagged(self):
        snapshot = _snapshot()
        marker = chunk_marker(snapshot)
        assert marker.flags & SNAP_CHUNKED
        assert marker.objects == () and marker.updates == ()
        assert marker.base_seqno == snapshot.base_seqno
        assert marker.next_seqno == snapshot.next_seqno

    def test_marker_preserves_delta_flag(self):
        snapshot = StateSnapshot("g", 0, (), (), 1, flags=SNAP_DELTA)
        assert chunk_marker(snapshot).flags == SNAP_DELTA | SNAP_CHUNKED


# --------------------------------------------------------------------------
# server core
# --------------------------------------------------------------------------

#: Small knobs so a few-kB state exercises the chunked path.
_SERVER_CFG = TransferConfig(
    chunk_threshold_bytes=256, initial_chunk_bytes=128,
    chunk_floor_bytes=32, chunk_ceiling_bytes=512,
    inflight_chunks=2, target_chunk_seconds=0.5,
    bandwidth_gain=0.5, resume_ttl=30.0,
)


def _server(clock):
    return CoreDriver(
        ServerCore(ServerConfig(server_id="s1", transfer=_SERVER_CFG), clock)
    )


def _connect(driver, client_id):
    conn = driver.connect()
    driver.deliver(conn, Hello(client_id=client_id))
    return conn


def _seed_group(driver, conn, state_bytes=2000, rid=1):
    driver.deliver(conn, CreateGroupRequest(
        rid, "g", False, (ObjectState("o", b"\xcd" * state_bytes),)
    ))
    driver.deliver(conn, JoinGroupRequest(
        rid + 1, "g", MemberRole.PRINCIPAL,
        TransferSpec(policy=TransferPolicy.NONE), False,
    ))


def _chunks_to(driver, conn, effects=None):
    return [m for m in driver.sent_to(conn, effects) if isinstance(m, StateChunk)]


class TestServerChunkedTransfer:
    def test_big_chunked_join_gets_marker_and_chunks(self):
        driver = _server(ManualClock())
        seeder = _connect(driver, "seeder")
        _seed_group(driver, seeder)
        joiner = _connect(driver, "joiner")
        effects = driver.deliver(joiner, JoinGroupRequest(
            2, "g", MemberRole.PRINCIPAL,
            TransferSpec(chunked=True), False,
        ))
        (reply,) = [m for m in driver.sent_to(joiner, effects)
                    if isinstance(m, JoinReply)]
        assert reply.snapshot.flags & SNAP_CHUNKED
        assert reply.snapshot.objects == ()
        chunks = _chunks_to(driver, joiner, effects)
        assert chunks and chunks[0].offset == 0
        assert len(chunks) == _SERVER_CFG.inflight_chunks
        assert driver.core.stats.chunked_transfers == 1

    def test_small_chunked_join_stays_monolithic(self):
        driver = _server(ManualClock())
        seeder = _connect(driver, "seeder")
        _seed_group(driver, seeder, state_bytes=50)
        joiner = _connect(driver, "joiner")
        effects = driver.deliver(joiner, JoinGroupRequest(
            2, "g", MemberRole.PRINCIPAL, TransferSpec(chunked=True), False,
        ))
        (reply,) = [m for m in driver.sent_to(joiner, effects)
                    if isinstance(m, JoinReply)]
        assert not reply.snapshot.flags & SNAP_CHUNKED
        assert reply.snapshot.objects  # the state is in the reply itself
        assert _chunks_to(driver, joiner, effects) == []
        assert driver.core.stats.chunked_transfers == 0

    def _start_join(self, driver):
        seeder = _connect(driver, "seeder")
        _seed_group(driver, seeder)
        joiner = _connect(driver, "joiner")
        effects = driver.deliver(joiner, JoinGroupRequest(
            2, "g", MemberRole.PRINCIPAL, TransferSpec(chunked=True), False,
        ))
        chunks = _chunks_to(driver, joiner, effects)
        return seeder, joiner, chunks

    def test_acks_clock_the_stream_to_completion(self):
        driver = _server(ManualClock())
        _seeder, joiner, chunks = self._start_join(driver)
        received = bytearray()
        transfer_id = chunks[0].transfer_id
        while chunks:
            for chunk in chunks:
                assert chunk.offset == len(received)
                received += chunk.data
            effects = driver.deliver(joiner, ChunkAck(
                "g", transfer_id, len(received)
            ))
            chunks = _chunks_to(driver, joiner, effects)
        # reassembled payload decodes to the full snapshot
        from repro.wire import codec
        snapshot = codec.decode(bytes(received))
        assert isinstance(snapshot, StateSnapshot)
        assert snapshot.objects[0].data == b"\xcd" * 2000
        # the session is gone once everything is acked
        assert driver.deliver(joiner, ChunkAck("g", transfer_id, 1)) == []

    def test_live_updates_fan_out_during_transfer(self):
        driver = _server(ManualClock())
        seeder, joiner, _chunks = self._start_join(driver)
        effects = driver.deliver(seeder, BcastUpdateRequest(
            9, "g", "o", b"live",
        ))
        deliveries = [m for m in driver.sent_to(joiner, effects)
                      if isinstance(m, Delivery)]
        assert deliveries and deliveries[0].update.data == b"live"

    def test_disconnect_pauses_and_resume_continues(self):
        clock = ManualClock()
        driver = _server(clock)
        _seeder, joiner, chunks = self._start_join(driver)
        transfer_id = chunks[0].transfer_id
        received = bytearray()
        for chunk in chunks:
            received += chunk.data
        driver.deliver(joiner, ChunkAck("g", transfer_id, len(received)))
        driver.close(joiner)
        # reconnect and resume at the first byte we lack
        joiner2 = _connect(driver, "joiner")
        driver.clear()
        effects = driver.deliver(joiner2, TransferResume(
            3, "g", transfer_id, len(received), 0
        ))
        (reply,) = [m for m in driver.sent_to(joiner2, effects)
                    if isinstance(m, JoinReply)]
        assert reply.request_id == 3
        assert reply.snapshot.flags & SNAP_CHUNKED
        resumed = _chunks_to(driver, joiner2, effects)
        assert resumed and resumed[0].offset == len(received)
        assert driver.core.stats.transfer_resumes == 1

    def test_resume_replays_missed_deliveries(self):
        driver = _server(ManualClock())
        seeder, joiner, chunks = self._start_join(driver)
        transfer_id = chunks[0].transfer_id
        driver.close(joiner)
        driver.deliver(seeder, BcastUpdateRequest(9, "g", "o", b"missed"))
        joiner2 = _connect(driver, "joiner")
        driver.clear()
        effects = driver.deliver(joiner2, TransferResume(3, "g", transfer_id, 0, -1))
        deliveries = [m for m in driver.sent_to(joiner2, effects)
                      if isinstance(m, Delivery)]
        assert [d.update.data for d in deliveries] == [b"missed"]

    def test_expired_resume_is_refused(self):
        clock = ManualClock()
        driver = _server(clock)
        _seeder, joiner, chunks = self._start_join(driver)
        transfer_id = chunks[0].transfer_id
        driver.close(joiner)
        clock.advance(_SERVER_CFG.resume_ttl + 1.0)
        joiner2 = _connect(driver, "joiner")
        driver.clear()
        effects = driver.deliver(joiner2, TransferResume(3, "g", transfer_id, 0, -1))
        (reply,) = [m for m in driver.sent_to(joiner2, effects)
                    if isinstance(m, ErrorReply)]
        assert reply.request_id == 3

    def test_fresh_join_supersedes_a_paused_transfer(self):
        driver = _server(ManualClock())
        _seeder, joiner, chunks = self._start_join(driver)
        old_id = chunks[0].transfer_id
        driver.close(joiner)
        joiner2 = _connect(driver, "joiner")
        driver.clear()
        effects = driver.deliver(joiner2, JoinGroupRequest(
            4, "g", MemberRole.PRINCIPAL, TransferSpec(chunked=True), False,
        ))
        fresh = _chunks_to(driver, joiner2, effects)
        assert fresh and fresh[0].transfer_id != old_id
        assert fresh[0].offset == 0
        # the old session is gone: resuming it now fails
        effects = driver.deliver(joiner2, TransferResume(5, "g", old_id, 0, -1))
        assert any(isinstance(m, ErrorReply)
                   for m in driver.sent_to(joiner2, effects))


# --------------------------------------------------------------------------
# client core
# --------------------------------------------------------------------------

def _client_driver():
    core = ClientCore(
        ClientConfig("c", auto_reconnect=True, reconnect_backoff=1.0),
        ManualClock(),
    )
    driver = CoreDriver(core)
    driver.invoke("connect", ("host", 1))
    conn = driver.connect(key="server")
    driver.deliver(conn, HelloReply(server_id="s1"))
    return driver, core, conn


def _marker_join(driver, conn, snapshot, rid=None):
    """Issue a chunked join and answer it with the chunk marker."""
    request_id = driver.invoke(
        "join_group", "g", MemberRole.PRINCIPAL,
        TransferSpec(chunked=True), False,
    )
    driver.deliver(conn, JoinReply(request_id, chunk_marker(snapshot), ()))
    return request_id


def _payload_chunks(snapshot, size, transfer_id=7):
    payload = frames.payload_of(snapshot)
    out = []
    for offset in range(0, len(payload), size):
        end = min(offset + size, len(payload))
        out.append(StateChunk("g", transfer_id, offset, payload[offset:end],
                              len(payload), end >= len(payload)))
    return out


class TestClientReassembly:
    def test_chunks_reassemble_into_the_view(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        rid = _marker_join(driver, conn, snapshot)
        assert rid in core._pending  # join stays open during the stream
        for chunk in _payload_chunks(snapshot, 128):
            driver.deliver(conn, chunk)
        view = core.views["g"]
        assert view.state.get("o").materialized() == b"\xab" * 500
        replies = [n for n in driver.notifications("reply")
                   if n.payload.request_id == rid]
        assert replies and replies[0].payload.ok

    def test_every_chunk_is_acked_and_reported(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        _marker_join(driver, conn, snapshot)
        driver.clear()
        chunks = _payload_chunks(snapshot, 128)
        for chunk in chunks:
            driver.deliver(conn, chunk)
        acks = [m for m in driver.sent_to(conn) if isinstance(m, ChunkAck)]
        assert [a.offset for a in acks] == [
            c.offset + len(c.data) for c in chunks
        ]
        progress = driver.notifications(NOTIFY_TRANSFER_PROGRESS)
        assert len(progress) == len(chunks)
        assert progress[-1].payload.received_bytes == progress[-1].payload.total_bytes

    def test_deliveries_buffer_and_replay_after_the_last_chunk(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        _marker_join(driver, conn, snapshot)
        chunks = _payload_chunks(snapshot, 128)
        # a live update arrives mid-stream, before the replica exists
        from repro.wire.messages import UpdateKind, UpdateRecord
        record = UpdateRecord(1, UpdateKind.UPDATE, "o", b"+live", "seeder", 0.0)
        driver.deliver(conn, chunks[0])
        effects = driver.deliver(conn, Delivery("g", record))
        # the application hears it immediately...
        assert any(isinstance(e, Notify) and e.kind == "delivery"
                   for e in effects)
        for chunk in chunks[1:]:
            driver.deliver(conn, chunk)
        # ...and the replica includes it after reassembly
        view = core.views["g"]
        assert view.state.get("o").materialized() == b"\xab" * 500 + b"+live"
        assert view.next_seqno == 2

    def test_chunk_gap_is_a_protocol_error(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        _marker_join(driver, conn, snapshot)
        chunks = _payload_chunks(snapshot, 128)
        driver.deliver(conn, chunks[0])
        from repro.core.errors import ProtocolError
        with pytest.raises(ProtocolError):
            core.on_message(conn, chunks[2])  # skipped chunks[1]

    def test_duplicate_chunk_after_resume_race_is_dropped(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        _marker_join(driver, conn, snapshot)
        chunks = _payload_chunks(snapshot, 128)
        driver.deliver(conn, chunks[0])
        driver.deliver(conn, chunks[0])  # duplicate: ignored
        for chunk in chunks[1:]:
            driver.deliver(conn, chunk)
        assert core.views["g"].state.get("o").materialized() == b"\xab" * 500

    def test_reconnect_sends_resume_with_byte_cursor(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        _marker_join(driver, conn, snapshot)
        chunks = _payload_chunks(snapshot, 128)
        driver.deliver(conn, chunks[0])
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        driver.clear()
        driver.deliver(conn2, HelloReply(server_id="s1"))
        resumes = [m for m in driver.sent_to(conn2)
                   if isinstance(m, TransferResume)]
        assert len(resumes) == 1
        assert resumes[0].offset == len(chunks[0].data)
        assert resumes[0].transfer_id == chunks[0].transfer_id
        # no duplicate join: the resume carries the session forward
        assert not [m for m in driver.sent_to(conn2)
                    if isinstance(m, JoinGroupRequest)]

    def test_resume_has_no_app_visible_reply(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        _marker_join(driver, conn, snapshot)
        chunks = _payload_chunks(snapshot, 128)
        driver.deliver(conn, chunks[0])
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        driver.deliver(conn2, HelloReply(server_id="s1"))
        (resume,) = [m for m in driver.sent_to(conn2)
                     if isinstance(m, TransferResume)]
        driver.clear()
        driver.deliver(conn2, JoinReply(
            resume.request_id, chunk_marker(snapshot), ()
        ))
        assert driver.notifications("reply") == []

    def test_rejected_resume_restarts_the_join(self):
        driver, core, conn = _client_driver()
        snapshot = _snapshot(payload_bytes=500)
        rid = _marker_join(driver, conn, snapshot)
        driver.deliver(conn, _payload_chunks(snapshot, 128)[0])
        driver.close(conn)
        driver.fire_timer("reconnect")
        conn2 = driver.connect(key="server")
        driver.deliver(conn2, HelloReply(server_id="s1"))
        (resume,) = [m for m in driver.sent_to(conn2)
                     if isinstance(m, TransferResume)]
        driver.clear()
        driver.deliver(conn2, ErrorReply(resume.request_id, "corona.stale", ""))
        joins = [m for m in driver.sent_to(conn2)
                 if isinstance(m, JoinGroupRequest)]
        assert len(joins) == 1
        assert joins[0].request_id == rid  # the original await completes


# --------------------------------------------------------------------------
# the byte-identity property
# --------------------------------------------------------------------------

class _Loop:
    """Message relay between one ServerCore and one ClientCore, with a
    seeder connection for concurrent updates and a cuttable link."""

    def __init__(self, transfer_config: TransferConfig):
        self.clock = ManualClock()
        self.server = ServerCore(
            ServerConfig(server_id="s1", transfer=transfer_config), self.clock
        )
        self.client = ClientCore(
            ClientConfig(
                "joiner", auto_reconnect=True, reconnect_backoff=1.0,
                request_timeout=1e9,
            ),
            self.clock,
        )
        self._conns = itertools.count(100)
        self.s_conn = None
        self.c_conn = None
        self.to_server: list = []
        self.to_client: list = []
        self.chunks_seen = 0
        self.seeder_conn = next(self._conns)
        self._collect_server(
            self.server.on_connected(self.seeder_conn, peer="seed", key="")
        )
        self._collect_server(
            self.server.on_message(self.seeder_conn, Hello(client_id="seeder"))
        )
        self.client.connect(("host", 1))
        self.client.drain()
        self._dial()

    # -- wiring ------------------------------------------------------------

    def _dial(self):
        self.s_conn = next(self._conns)
        self.c_conn = next(self._conns)
        self._collect_server(
            self.server.on_connected(self.s_conn, peer="c", key="")
        )
        self._collect_client(
            self.client.on_connected(self.c_conn, peer="s", key="server")
        )

    def _collect_server(self, effects):
        for effect in effects:
            if isinstance(effect, SendMessage) and effect.conn == self.s_conn:
                self.to_client.append(effect.message)
            elif isinstance(effect, CloseConnection) and effect.conn == self.s_conn:
                self.cut()

    def _collect_client(self, effects):
        for effect in effects:
            if isinstance(effect, SendMessage):
                self.to_server.append(effect.message)

    def cut(self):
        """Drop the link and every in-flight message on it."""
        s_conn, c_conn = self.s_conn, self.c_conn
        self.s_conn = self.c_conn = None
        self.to_server.clear()
        self.to_client.clear()
        self._collect_server(self.server.on_closed(s_conn))
        self._collect_client(self.client.on_closed(c_conn))

    def reconnect(self):
        self._dial()
        # redeliver the reconnect handshake: Hello went to_server on dial
        self.run()

    def seed(self, message):
        """A request from the seeder client (its replies are discarded,
        but fan-out effects to the joiner's connection still flow)."""
        self._collect_server(self.server.on_message(self.seeder_conn, message))

    # -- pumping -----------------------------------------------------------

    def step(self) -> bool:
        """Deliver one queued message; False when both queues are idle."""
        if self.to_server and self.s_conn is not None:
            message = self.to_server.pop(0)
            self.clock.advance(0.05)
            self._collect_server(self.server.on_message(self.s_conn, message))
            return True
        if self.to_client and self.c_conn is not None:
            message = self.to_client.pop(0)
            self.clock.advance(0.05)
            if isinstance(message, StateChunk):
                self.chunks_seen += 1
            self._collect_client(self.client.on_message(self.c_conn, message))
            return True
        return False

    def run(self):
        while self.step():
            pass


_CONFIGS = st.builds(
    lambda floor, initial_extra, ceiling_extra, inflight, gain: TransferConfig(
        chunk_threshold_bytes=100,
        chunk_floor_bytes=floor,
        initial_chunk_bytes=floor + initial_extra,
        chunk_ceiling_bytes=floor + initial_extra + ceiling_extra,
        inflight_chunks=inflight,
        target_chunk_seconds=0.25,
        bandwidth_gain=gain,
        resume_ttl=1e9,
    ),
    floor=st.integers(8, 64),
    initial_extra=st.integers(0, 128),
    ceiling_extra=st.integers(0, 400),
    inflight=st.integers(1, 4),
    gain=st.floats(0.1, 1.0),
)


@settings(max_examples=30, deadline=None)
@given(
    config=_CONFIGS,
    objects=st.lists(st.integers(50, 400), min_size=1, max_size=3),
    # (after how many delivered chunks, which object, payload byte)
    updates=st.lists(
        st.tuples(st.integers(0, 12), st.integers(0, 2), st.integers(0, 255)),
        max_size=4,
    ),
    disconnect_after=st.one_of(st.none(), st.integers(1, 12)),
)
def test_chunked_join_byte_identical_to_monolithic(
    config, objects, updates, disconnect_after
):
    """For arbitrary chunk sizes, concurrent-update interleavings and
    disconnect points, a chunked join converges to the same bytes a
    monolithic FULL join of the final state sees."""
    loop = _Loop(config)
    initial = tuple(
        ObjectState(f"o{i}", bytes([i % 251]) * size)
        for i, size in enumerate(objects)
    )
    loop.seed(CreateGroupRequest(1, "g", False, initial))
    loop.seed(JoinGroupRequest(
        2, "g", MemberRole.PRINCIPAL,
        TransferSpec(policy=TransferPolicy.NONE), False,
    ))
    loop.run()

    join_rid = loop.client.join_group(
        "g", MemberRole.PRINCIPAL, TransferSpec(chunked=True), False
    )
    loop._collect_client(loop.client.drain())

    pending = sorted(updates, key=lambda u: u[0])
    rid = itertools.count(50)
    cut_done = disconnect_after is None
    while True:
        progressed = loop.step()
        while pending and pending[0][0] <= loop.chunks_seen:
            _at, obj, byte = pending.pop(0)
            loop.seed(BcastUpdateRequest(
                next(rid), "g", f"o{obj % len(objects)}", bytes([byte])
            ))
            progressed = True
        if not cut_done and loop.chunks_seen >= disconnect_after:
            cut_done = True
            loop.cut()
            loop.reconnect()
            progressed = True
        if not progressed:
            if pending:
                # stream ended before the trigger point: flush the rest
                for _at, obj, byte in pending:
                    loop.seed(BcastUpdateRequest(
                        next(rid), "g", f"o{obj % len(objects)}", bytes([byte])
                    ))
                pending = []
                loop.run()
                continue
            if not cut_done:
                cut_done = True
                loop.cut()
                loop.reconnect()
                continue
            break

    assert join_rid not in loop.client._pending
    view = loop.client.views["g"]

    # the reference: a monolithic FULL join of the final state
    reference = ClientCore(ClientConfig("ref"), loop.clock)
    ref_conn = next(loop._conns)
    reference.connect(("host", 1))
    reference.drain()
    to_ref_server = []
    for effect in reference.on_connected(ref_conn, peer="s", key="server"):
        if isinstance(effect, SendMessage):
            to_ref_server.append(effect.message)
    srv_conn = next(loop._conns)
    loop.server.on_connected(srv_conn, peer="ref", key="")
    while to_ref_server:
        for effect in loop.server.on_message(srv_conn, to_ref_server.pop(0)):
            if isinstance(effect, SendMessage) and effect.conn == srv_conn:
                reference.on_message(ref_conn, effect.message)
                for eff in reference.drain():
                    if isinstance(eff, SendMessage):
                        to_ref_server.append(eff.message)
    reference.join_group("g", MemberRole.PRINCIPAL, TransferSpec(), False)
    for effect in reference.drain():
        if isinstance(effect, SendMessage):
            for back in loop.server.on_message(srv_conn, effect.message):
                if isinstance(back, SendMessage) and back.conn == srv_conn:
                    reference.on_message(ref_conn, back.message)
                    reference.drain()
    ref_view = reference.views["g"]

    assert sorted(view.state.object_ids()) == sorted(ref_view.state.object_ids())
    for object_id in ref_view.state.object_ids():
        assert (view.state.get(object_id).materialized()
                == ref_view.state.get(object_id).materialized()), object_id
    assert view.next_seqno == ref_view.next_seqno
