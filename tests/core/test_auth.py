"""Tests for client authentication (the §5.3 future work)."""

import asyncio

import pytest

from repro.core.auth import AllowAnyClient, TokenAuthenticator
from repro.core.clock import ManualClock
from repro.core.errors import NotAuthorizedError
from repro.core.events import CloseConnection
from repro.core.server import ServerConfig, ServerCore
from repro.core.session import AclSessionManager, GroupAction
from repro.sim.harness import CoronaWorld
from repro.wire.messages import ErrorReply, Hello, HelloReply
from tests.core.helpers import CoreDriver


class TestAuthenticators:
    def test_allow_any(self):
        assert AllowAnyClient().authenticate("anyone", "")

    def test_token_match(self):
        auth = TokenAuthenticator({"alice": "s3cret"})
        assert auth.authenticate("alice", "s3cret")
        assert not auth.authenticate("alice", "wrong")
        assert not auth.authenticate("alice", "")

    def test_unregistered_client_rejected_by_default(self):
        auth = TokenAuthenticator({"alice": "x"})
        assert not auth.authenticate("mallory", "x")

    def test_unregistered_client_admitted_when_allowed(self):
        auth = TokenAuthenticator({"alice": "x"}, allow_unregistered=True)
        assert auth.authenticate("guest", "")

    def test_register(self):
        auth = TokenAuthenticator()
        auth.register("bob", "pw")
        assert auth.authenticate("bob", "pw")


class TestServerHandshake:
    def _server(self, **config):
        return CoreDriver(ServerCore(ServerConfig(**config), ManualClock()))

    def test_good_token_admitted(self):
        driver = self._server(authenticator=TokenAuthenticator({"alice": "pw"}))
        conn = driver.connect()
        effects = driver.deliver(conn, Hello(client_id="alice", token="pw"))
        assert any(isinstance(m, HelloReply) for m in driver.sent_to(conn, effects))

    def test_bad_token_rejected_and_closed(self):
        driver = self._server(authenticator=TokenAuthenticator({"alice": "pw"}))
        conn = driver.connect()
        effects = driver.deliver(conn, Hello(client_id="alice", token="nope"))
        (reply,) = driver.sent_to(conn, effects)
        assert isinstance(reply, ErrorReply)
        assert reply.request_id == 0
        assert reply.code == "corona.not_authorized"
        assert CloseConnection(conn) in effects

    def test_wrong_protocol_version_rejected(self):
        driver = self._server()
        conn = driver.connect()
        effects = driver.deliver(conn, Hello(client_id="x", protocol_version=99))
        (reply,) = driver.sent_to(conn, effects)
        assert reply.code == "corona.protocol"
        assert CloseConnection(conn) in effects

    def test_default_server_is_open(self):
        driver = self._server()
        conn = driver.connect()
        effects = driver.deliver(conn, Hello(client_id="anyone"))
        assert any(isinstance(m, HelloReply) for m in driver.sent_to(conn, effects))


class TestEndToEnd:
    def test_authenticated_session_in_sim(self):
        world = CoronaWorld()
        auth = TokenAuthenticator({"alice": "pw", "bob": "bобpw"})
        world.add_server(config=ServerConfig(server_id="server", authenticator=auth))
        alice = world.add_client(client_id="alice", token="pw")
        mallory = world.add_client(client_id="mallory", token="guess")
        world.run()
        assert alice.core.connected
        assert not mallory.core.connected
        errors = mallory.events_of_kind("error")
        assert errors and isinstance(errors[0], NotAuthorizedError)

    def test_auth_plus_acl_compose(self):
        """Authentication says who you are; the session manager says what
        you may do — together they are the paper's 'security mechanisms
        and access control'."""
        world = CoronaWorld()
        auth = TokenAuthenticator({"admin": "root", "user": "pw"})
        acl = AclSessionManager()
        acl.restrict("ops", GroupAction.CREATE, {"admin"})
        world.add_server(config=ServerConfig(
            server_id="server", authenticator=auth, session_manager=acl,
        ))
        admin = world.add_client(client_id="admin", token="root")
        user = world.add_client(client_id="user", token="pw")
        world.run()
        denied = user.call("create_group", "ops")
        world.run()
        assert denied.error.code == "corona.not_authorized"
        allowed = admin.call("create_group", "ops")
        world.run()
        assert allowed.ok

    def test_runtime_rejects_bad_token(self):
        from repro.net.memory import MemoryNetwork
        from repro.runtime import CoronaClient, CoronaServer

        async def main():
            net = MemoryNetwork()
            server = CoronaServer(
                config=ServerConfig(authenticator=TokenAuthenticator({"a": "pw"})),
                transport=net,
            )
            await server.start("corona", 0)
            client = await CoronaClient.connect(
                ("corona", 0), "a", transport=net, token="pw"
            )
            assert client.core.connected
            await client.close()
            with pytest.raises(NotAuthorizedError):
                await CoronaClient.connect(
                    ("corona", 0), "a", transport=net, token="wrong"
                )
            await server.stop()

        asyncio.run(main())
