"""Tests for group bookkeeping: membership, lifecycle flags."""

import pytest

from repro.core.errors import AlreadyMemberError, NotAMemberError
from repro.core.group import Group
from repro.wire.messages import MemberInfo, MemberRole, ObjectState


def _group(persistent=False):
    return Group("g", persistent, initial_state=(ObjectState("o", b"init"),))


class TestMembership:
    def test_add_and_query(self):
        group = _group()
        group.add_member("alice", conn=1, role=MemberRole.PRINCIPAL)
        assert group.is_member("alice")
        assert len(group) == 1
        assert group.member("alice").conn == 1

    def test_join_order_preserved(self):
        group = _group()
        for i, name in enumerate(["c", "a", "b"]):
            group.add_member(name, conn=i, role=MemberRole.PRINCIPAL)
        assert [m.client_id for m in group.members()] == ["c", "a", "b"]

    def test_duplicate_join_rejected(self):
        group = _group()
        group.add_member("alice", 1, MemberRole.PRINCIPAL)
        with pytest.raises(AlreadyMemberError):
            group.add_member("alice", 2, MemberRole.PRINCIPAL)

    def test_remove_member(self):
        group = _group()
        group.add_member("alice", 1, MemberRole.PRINCIPAL)
        removed = group.remove_member("alice")
        assert removed.client_id == "alice"
        assert not group.is_member("alice")

    def test_remove_non_member_raises(self):
        with pytest.raises(NotAMemberError):
            _group().remove_member("ghost")

    def test_member_lookup_raises_for_non_member(self):
        with pytest.raises(NotAMemberError):
            _group().member("ghost")

    def test_member_infos(self):
        group = _group()
        group.add_member("alice", 1, MemberRole.PRINCIPAL)
        group.add_member("bob", 2, MemberRole.OBSERVER)
        assert group.member_infos() == (
            MemberInfo("alice", MemberRole.PRINCIPAL),
            MemberInfo("bob", MemberRole.OBSERVER),
        )

    def test_notice_subscribers(self):
        group = _group()
        group.add_member("alice", 1, MemberRole.PRINCIPAL, wants_membership_notices=True)
        group.add_member("bob", 2, MemberRole.PRINCIPAL)
        assert [m.client_id for m in group.notice_subscribers()] == ["alice"]


class TestLifecycle:
    def test_transient_dies_when_empty(self):
        group = _group(persistent=False)
        assert group.empty
        assert group.dies_when_empty

    def test_persistent_survives_null_membership(self):
        group = _group(persistent=True)
        assert group.empty
        assert not group.dies_when_empty

    def test_initial_state_loaded(self):
        group = _group()
        assert group.state.get("o").base == b"init"

    def test_fresh_group_log_empty(self):
        group = _group()
        assert len(group.log) == 0
        assert group.sequencer.next_seqno == 0
