"""Sans-io unit tests for the single-server Corona core (paper §3)."""

import pytest

from repro.core.clock import ManualClock
from repro.core.events import (
    AppendWal,
    CloseConnection,
    CreateGroupStorage,
    PurgeGroupStorage,
    SendMessage,
)
from repro.core.reduction import ReduceByCount
from repro.core.server import ServerConfig, ServerCore
from repro.core.session import AclSessionManager, GroupAction
from repro.storage.store import RecoveredGroup
from repro.wire import codec
from repro.wire.messages import (
    Ack,
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    CreateGroupRequest,
    DeleteGroupRequest,
    Delivery,
    DeliveryMode,
    ErrorReply,
    GetMembershipRequest,
    GroupDeletedNotice,
    GroupListReply,
    GroupMeta,
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    LeaveGroupRequest,
    ListGroupsRequest,
    LockGranted,
    MemberInfo,
    MemberRole,
    MembershipNotice,
    MembershipReply,
    PingReply,
    PingRequest,
    ReduceLogRequest,
    ReleaseLockRequest,
    ObjectState,
    StateSnapshot,
    TransferPolicy,
    TransferSpec,
    UpdateKind,
    UpdateRecord,
)
from tests.core.helpers import CoreDriver


@pytest.fixture
def clock():
    return ManualClock()


def _server(clock, **config_kwargs):
    config = ServerConfig(server_id="s1", **config_kwargs)
    return CoreDriver(ServerCore(config, clock))


def _client(driver, client_id):
    conn = driver.connect()
    effects = driver.deliver(conn, Hello(client_id=client_id))
    assert any(
        isinstance(e, SendMessage) and isinstance(e.message, HelloReply)
        for e in effects
    )
    return conn


def _join(driver, conn, group="g", rid=10, **kwargs):
    effects = driver.deliver(conn, JoinGroupRequest(rid, group, **kwargs))
    replies = [m for m in driver.sent_to(conn, effects) if isinstance(m, JoinReply)]
    assert replies, f"join failed: {driver.sent_to(conn, effects)}"
    return replies[0]


class TestHandshake:
    def test_hello_reply_carries_server_id(self, clock):
        driver = _server(clock)
        conn = driver.connect()
        effects = driver.deliver(conn, Hello(client_id="alice"))
        (reply,) = driver.sent_to(conn, effects)
        assert reply == HelloReply(server_id="s1")

    def test_request_before_hello_rejected(self, clock):
        driver = _server(clock)
        conn = driver.connect()
        effects = driver.deliver(conn, PingRequest(1))
        (reply,) = driver.sent_to(conn, effects)
        assert isinstance(reply, ErrorReply)
        assert reply.code == "corona.protocol"

    def test_reconnect_closes_stale_connection(self, clock):
        driver = _server(clock)
        old = _client(driver, "alice")
        new = driver.connect()
        effects = driver.deliver(new, Hello(client_id="alice"))
        closes = [e for e in effects if isinstance(e, CloseConnection)]
        assert closes == [CloseConnection(old)]

    def test_ping(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        clock.advance(12.5)
        effects = driver.deliver(conn, PingRequest(7))
        (reply,) = driver.sent_to(conn, effects)
        assert reply == PingReply(7, 12.5)


class TestCreateGroup:
    def test_create_acked_and_persisted(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        initial = (ObjectState("o", b"init"),)
        effects = driver.deliver(conn, CreateGroupRequest(1, "g", True, initial))
        assert Ack(1) in driver.sent_to(conn, effects)
        (create,) = driver.of_type(CreateGroupStorage, effects)
        meta = codec.decode(create.meta)
        assert isinstance(meta, GroupMeta)
        assert meta.persistent and meta.initial_state == initial

    def test_duplicate_create_rejected(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "g"))
        effects = driver.deliver(conn, CreateGroupRequest(2, "g"))
        (reply,) = driver.sent_to(conn, effects)
        assert isinstance(reply, ErrorReply) and reply.code == "corona.group_exists"

    def test_unauthorized_create_rejected(self, clock):
        acl = AclSessionManager()
        acl.restrict("g", GroupAction.CREATE, {"admin"})
        driver = _server(clock, session_manager=acl)
        conn = _client(driver, "alice")
        effects = driver.deliver(conn, CreateGroupRequest(1, "g"))
        (reply,) = driver.sent_to(conn, effects)
        assert reply.code == "corona.not_authorized"

    def test_no_storage_effect_when_not_persisting(self, clock):
        driver = _server(clock, persist=False)
        conn = _client(driver, "alice")
        effects = driver.deliver(conn, CreateGroupRequest(1, "g"))
        assert driver.of_type(CreateGroupStorage, effects) == []


class TestJoin:
    def test_join_gets_full_state_and_membership(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(
            conn, CreateGroupRequest(1, "g", False, (ObjectState("o", b"S"),))
        )
        reply = _join(driver, conn)
        assert reply.snapshot.objects == (ObjectState("o", b"S"),)
        assert reply.members == (MemberInfo("alice", MemberRole.PRINCIPAL),)

    def test_join_missing_group(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        effects = driver.deliver(conn, JoinGroupRequest(1, "ghost"))
        (reply,) = driver.sent_to(conn, effects)
        assert reply.code == "corona.no_such_group"

    def test_double_join_rejected(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "g"))
        _join(driver, conn)
        effects = driver.deliver(conn, JoinGroupRequest(2, "g"))
        (reply,) = driver.sent_to(conn, effects)
        assert reply.code == "corona.already_member"

    def test_join_does_not_involve_existing_members(self, clock):
        """The defining Corona property: a join sends nothing to members
        who did not subscribe to membership notifications."""
        driver = _server(clock)
        alice = _client(driver, "alice")
        bob = _client(driver, "bob")
        driver.deliver(alice, CreateGroupRequest(1, "g"))
        _join(driver, alice)
        driver.clear()
        _join(driver, bob, rid=11)
        assert driver.sent_to(alice) == []

    def test_membership_notice_to_subscribers_only(self, clock):
        driver = _server(clock)
        alice = _client(driver, "alice")
        bob = _client(driver, "bob")
        carol = _client(driver, "carol")
        driver.deliver(alice, CreateGroupRequest(1, "g"))
        _join(driver, alice, rid=2, notify_membership=True)
        _join(driver, bob, rid=3)
        driver.clear()
        _join(driver, carol, rid=4)
        (notice,) = driver.sent_to(alice)
        assert isinstance(notice, MembershipNotice)
        assert notice.joined == (MemberInfo("carol", MemberRole.PRINCIPAL),)
        assert len(notice.members) == 3
        assert driver.sent_to(bob) == []

    def test_get_membership(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "g"))
        _join(driver, conn)
        effects = driver.deliver(conn, GetMembershipRequest(5, "g"))
        (reply,) = driver.sent_to(conn, effects)
        assert reply == MembershipReply(
            5, "g", (MemberInfo("alice", MemberRole.PRINCIPAL),)
        )

    def test_list_groups(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "a", True))
        driver.deliver(conn, CreateGroupRequest(2, "b"))
        effects = driver.deliver(conn, ListGroupsRequest(3))
        (reply,) = driver.sent_to(conn, effects)
        assert isinstance(reply, GroupListReply)
        assert {g.name: g.persistent for g in reply.groups} == {"a": True, "b": False}


class TestMulticast:
    def _room(self, clock, members=("alice", "bob"), **config):
        driver = _server(clock, **config)
        conns = {}
        for i, name in enumerate(members):
            conns[name] = _client(driver, name)
        driver.deliver(conns[members[0]], CreateGroupRequest(1, "g"))
        for i, name in enumerate(members):
            _join(driver, conns[name], rid=10 + i)
        driver.clear()
        return driver, conns

    def test_inclusive_delivery_to_all(self, clock):
        driver, conns = self._room(clock)
        effects = driver.deliver(
            conns["alice"], BcastUpdateRequest(20, "g", "o", b"d")
        )
        for name in ("alice", "bob"):
            deliveries = [
                m for m in driver.sent_to(conns[name], effects)
                if isinstance(m, Delivery)
            ]
            assert len(deliveries) == 1
            assert deliveries[0].update.data == b"d"
            assert deliveries[0].update.sender == "alice"
        assert Ack(20) in driver.sent_to(conns["alice"], effects)

    def test_exclusive_skips_sender(self, clock):
        driver, conns = self._room(clock)
        effects = driver.deliver(
            conns["alice"],
            BcastUpdateRequest(20, "g", "o", b"d", DeliveryMode.EXCLUSIVE),
        )
        alice_msgs = driver.sent_to(conns["alice"], effects)
        assert not any(isinstance(m, Delivery) for m in alice_msgs)
        assert Ack(20) in alice_msgs
        assert any(isinstance(m, Delivery) for m in driver.sent_to(conns["bob"], effects))

    def test_seqnos_are_contiguous_and_total(self, clock):
        driver, conns = self._room(clock)
        driver.deliver(conns["alice"], BcastUpdateRequest(20, "g", "o", b"a"))
        driver.deliver(conns["bob"], BcastUpdateRequest(21, "g", "o", b"b"))
        deliveries = [
            m for m in driver.sent_to(conns["alice"]) if isinstance(m, Delivery)
        ]
        assert [d.update.seqno for d in deliveries] == [0, 1]

    def test_timestamp_from_service_clock(self, clock):
        driver, conns = self._room(clock)
        clock.advance(42.0)
        driver.deliver(conns["alice"], BcastUpdateRequest(20, "g", "o", b"a"))
        (delivery,) = [
            m for m in driver.sent_to(conns["bob"]) if isinstance(m, Delivery)
        ]
        assert delivery.update.timestamp == 42.0

    def test_delivery_fanout_in_join_order(self, clock):
        driver, conns = self._room(clock, members=("alice", "bob", "carol"))
        effects = driver.deliver(
            conns["alice"], BcastUpdateRequest(20, "g", "o", b"d")
        )
        send_order = [
            e.conn for e in driver.all_sends(effects)
            if isinstance(e.message, Delivery)
        ]
        assert send_order == [conns["alice"], conns["bob"], conns["carol"]]

    def test_bcast_state_overrides(self, clock):
        driver, conns = self._room(clock)
        driver.deliver(conns["alice"], BcastUpdateRequest(20, "g", "o", b"a"))
        driver.deliver(conns["alice"], BcastStateRequest(21, "g", "o", b"NEW"))
        group = driver.core.groups["g"]
        assert group.state.get("o").materialized() == b"NEW"

    def test_non_member_cannot_broadcast(self, clock):
        driver, conns = self._room(clock)
        outsider = _client(driver, "eve")
        effects = driver.deliver(outsider, BcastUpdateRequest(30, "g", "o", b"d"))
        (reply,) = driver.sent_to(outsider, effects)
        assert reply.code == "corona.not_a_member"

    def test_observer_cannot_broadcast(self, clock):
        driver, conns = self._room(clock)
        watcher = _client(driver, "watcher")
        _join(driver, watcher, rid=15, role=MemberRole.OBSERVER)
        effects = driver.deliver(watcher, BcastUpdateRequest(30, "g", "o", b"d"))
        replies = [
            m for m in driver.sent_to(watcher, effects) if isinstance(m, ErrorReply)
        ]
        assert replies and replies[0].code == "corona.not_authorized"

    def test_observer_still_receives_deliveries(self, clock):
        driver, conns = self._room(clock)
        watcher = _client(driver, "watcher")
        _join(driver, watcher, rid=15, role=MemberRole.OBSERVER)
        effects = driver.deliver(conns["alice"], BcastUpdateRequest(31, "g", "o", b"d"))
        assert any(
            isinstance(m, Delivery) for m in driver.sent_to(watcher, effects)
        )

    def test_stateful_server_logs_to_wal(self, clock):
        driver, conns = self._room(clock)
        effects = driver.deliver(conns["alice"], BcastUpdateRequest(20, "g", "o", b"d"))
        (append,) = driver.of_type(AppendWal, effects)
        record = codec.decode(append.record)
        assert isinstance(record, UpdateRecord)
        assert record.seqno == 0 and append.seqno == 0

    def test_stateless_server_does_not_log(self, clock):
        driver, conns = self._room(clock, stateful=False)
        effects = driver.deliver(conns["alice"], BcastUpdateRequest(20, "g", "o", b"d"))
        assert driver.of_type(AppendWal, effects) == []
        assert driver.core.groups["g"].log.records() == ()
        # but delivery and sequencing still happen
        assert any(isinstance(m, Delivery) for m in driver.sent_to(conns["bob"], effects))


class TestLeaveAndFailure:
    def _room(self, clock, persistent=False):
        driver = _server(clock)
        alice = _client(driver, "alice")
        bob = _client(driver, "bob")
        driver.deliver(alice, CreateGroupRequest(1, "g", persistent))
        _join(driver, alice, rid=2, notify_membership=True)
        _join(driver, bob, rid=3)
        driver.clear()
        return driver, alice, bob

    def test_leave_acked_and_noticed(self, clock):
        driver, alice, bob = self._room(clock)
        effects = driver.deliver(bob, LeaveGroupRequest(9, "g"))
        assert Ack(9) in driver.sent_to(bob, effects)
        (notice,) = [
            m for m in driver.sent_to(alice) if isinstance(m, MembershipNotice)
        ]
        assert notice.left == (MemberInfo("bob", MemberRole.PRINCIPAL),)

    def test_leave_without_membership_rejected(self, clock):
        driver, alice, bob = self._room(clock)
        eve = _client(driver, "eve")
        effects = driver.deliver(eve, LeaveGroupRequest(9, "g"))
        (reply,) = driver.sent_to(eve, effects)
        assert reply.code == "corona.not_a_member"

    def test_transient_group_dies_at_null_membership(self, clock):
        driver, alice, bob = self._room(clock, persistent=False)
        driver.deliver(bob, LeaveGroupRequest(9, "g"))
        effects = driver.deliver(alice, LeaveGroupRequest(10, "g"))
        assert "g" not in driver.core.groups
        assert driver.of_type(PurgeGroupStorage, effects)

    def test_persistent_group_survives_null_membership(self, clock):
        driver, alice, bob = self._room(clock, persistent=True)
        driver.deliver(conn=bob, message=LeaveGroupRequest(9, "g"))
        driver.deliver(conn=alice, message=LeaveGroupRequest(10, "g"))
        assert "g" in driver.core.groups
        # state remains transferable to a later joiner
        driver.deliver(alice, BcastUpdateRequest(11, "g", "o", b"x"))  # error: not member
        reply = _join(driver, alice, rid=12)
        assert reply.snapshot.next_seqno == 0

    def test_disconnect_removes_from_groups_and_releases_locks(self, clock):
        driver, alice, bob = self._room(clock)
        driver.deliver(bob, AcquireLockRequest(20, "g", "o"))
        driver.deliver(alice, AcquireLockRequest(21, "g", "o"))  # queued
        driver.clear()
        effects = driver.close(bob)
        grants = [
            m for m in driver.sent_to(alice, effects) if isinstance(m, LockGranted)
        ]
        assert grants == [LockGranted(21, "g", "o")]
        assert not driver.core.groups["g"].is_member("bob")

    def test_disconnect_of_unknown_conn_is_noop(self, clock):
        driver = _server(clock)
        assert driver.close(999) == []


class TestDelete:
    def test_delete_notifies_members_and_purges(self, clock):
        driver = _server(clock)
        alice = _client(driver, "alice")
        bob = _client(driver, "bob")
        driver.deliver(alice, CreateGroupRequest(1, "g", True))
        _join(driver, alice, rid=2)
        _join(driver, bob, rid=3)
        driver.clear()
        effects = driver.deliver(alice, DeleteGroupRequest(4, "g"))
        assert GroupDeletedNotice("g") in driver.sent_to(bob, effects)
        assert Ack(4) in driver.sent_to(alice, effects)
        assert driver.of_type(PurgeGroupStorage, effects)
        assert "g" not in driver.core.groups

    def test_delete_missing_group(self, clock):
        driver = _server(clock)
        alice = _client(driver, "alice")
        effects = driver.deliver(alice, DeleteGroupRequest(1, "ghost"))
        (reply,) = driver.sent_to(alice, effects)
        assert reply.code == "corona.no_such_group"


class TestLocks:
    def _locked_room(self, clock):
        driver = _server(clock)
        alice = _client(driver, "alice")
        bob = _client(driver, "bob")
        driver.deliver(alice, CreateGroupRequest(1, "g"))
        _join(driver, alice, rid=2)
        _join(driver, bob, rid=3)
        driver.clear()
        return driver, alice, bob

    def test_grant_and_release(self, clock):
        driver, alice, bob = self._locked_room(clock)
        effects = driver.deliver(alice, AcquireLockRequest(10, "g", "o"))
        assert LockGranted(10, "g", "o") in driver.sent_to(alice, effects)
        effects = driver.deliver(alice, ReleaseLockRequest(11, "g", "o"))
        assert Ack(11) in driver.sent_to(alice, effects)

    def test_blocking_queue_granted_on_release(self, clock):
        driver, alice, bob = self._locked_room(clock)
        driver.deliver(alice, AcquireLockRequest(10, "g", "o"))
        effects = driver.deliver(bob, AcquireLockRequest(11, "g", "o"))
        assert driver.sent_to(bob, effects) == []  # queued silently
        effects = driver.deliver(alice, ReleaseLockRequest(12, "g", "o"))
        assert LockGranted(11, "g", "o") in driver.sent_to(bob, effects)

    def test_nonblocking_denied(self, clock):
        driver, alice, bob = self._locked_room(clock)
        driver.deliver(alice, AcquireLockRequest(10, "g", "o"))
        effects = driver.deliver(bob, AcquireLockRequest(11, "g", "o", blocking=False))
        (reply,) = driver.sent_to(bob, effects)
        assert reply.code == "corona.lock_held"

    def test_release_not_held(self, clock):
        driver, alice, bob = self._locked_room(clock)
        effects = driver.deliver(bob, ReleaseLockRequest(11, "g", "o"))
        (reply,) = driver.sent_to(bob, effects)
        assert reply.code == "corona.lock_not_held"

    def test_lock_requires_membership(self, clock):
        driver, alice, bob = self._locked_room(clock)
        eve = _client(driver, "eve")
        effects = driver.deliver(eve, AcquireLockRequest(11, "g", "o"))
        (reply,) = driver.sent_to(eve, effects)
        assert reply.code == "corona.not_a_member"


class TestReduction:
    def test_explicit_reduce_folds_and_checkpoints(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "g", True, (ObjectState("o", b"S"),)))
        _join(driver, conn)
        for i in range(3):
            driver.deliver(conn, BcastUpdateRequest(10 + i, "g", "o", b"%d" % i))
        driver.clear()
        effects = driver.deliver(conn, ReduceLogRequest(20, "g"))
        assert Ack(20) in driver.sent_to(conn, effects)
        (ckpt,) = driver.checkpoints()
        snapshot = codec.decode(ckpt.snapshot)
        assert isinstance(snapshot, StateSnapshot)
        assert snapshot.base_seqno == 2
        assert snapshot.objects == (ObjectState("o", b"S012"),)
        group = driver.core.groups["g"]
        assert len(group.log) == 0
        assert group.log.next_seqno == 3

    def test_policy_triggers_auto_reduction(self, clock):
        driver = _server(clock, reduction=ReduceByCount(max_records=2))
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "g", True))
        _join(driver, conn)
        for i in range(3):
            driver.deliver(conn, BcastUpdateRequest(10 + i, "g", "o", b"x"))
        assert driver.checkpoints()  # third append crossed the threshold
        assert len(driver.core.groups["g"].log) == 0

    def test_reduce_on_empty_log_is_noop(self, clock):
        driver = _server(clock)
        conn = _client(driver, "alice")
        driver.deliver(conn, CreateGroupRequest(1, "g", True))
        effects = driver.deliver(conn, ReduceLogRequest(2, "g"))
        assert Ack(2) in driver.sent_to(conn, effects)
        assert driver.checkpoints() == []

    def test_join_after_reduction_gets_folded_state(self, clock):
        driver = _server(clock)
        alice = _client(driver, "alice")
        driver.deliver(alice, CreateGroupRequest(1, "g", True))
        _join(driver, alice)
        for i in range(3):
            driver.deliver(alice, BcastUpdateRequest(10 + i, "g", "o", b"%d" % i))
        driver.deliver(alice, ReduceLogRequest(20, "g"))
        bob = _client(driver, "bob")
        reply = _join(driver, bob, rid=21)
        assert reply.snapshot.objects == (ObjectState("o", b"012"),)
        assert reply.snapshot.next_seqno == 3


class TestRecovery:
    def _recovered_core(self, clock, records=(), snapshot=None, ckpt_seqno=-1):
        meta = GroupMeta("g", True, (ObjectState("o", b"INIT"),), 0.0)
        data = RecoveredGroup(
            group="g",
            meta=codec.encode(meta),
            checkpoint_seqno=ckpt_seqno,
            snapshot=codec.encode(snapshot) if snapshot else None,
            records=[(r.seqno, codec.encode(r)) for r in records],
        )
        return ServerCore(ServerConfig(server_id="s1"), clock, recovered={"g": data})

    def test_recover_from_meta_only(self, clock):
        core = self._recovered_core(clock)
        group = core.groups["g"]
        assert group.persistent
        assert group.state.get("o").materialized() == b"INIT"
        assert group.sequencer.next_seqno == 0

    def test_recover_replays_wal_records(self, clock):
        records = [
            UpdateRecord(0, UpdateKind.UPDATE, "o", b"+a", "c", 0.0),
            UpdateRecord(1, UpdateKind.UPDATE, "o", b"+b", "c", 0.0),
        ]
        core = self._recovered_core(clock, records=records)
        group = core.groups["g"]
        assert group.state.get("o").materialized() == b"INIT+a+b"
        assert group.sequencer.next_seqno == 2
        assert len(group.log) == 2

    def test_recover_from_checkpoint_plus_suffix(self, clock):
        snapshot = StateSnapshot("g", 4, (ObjectState("o", b"FOLDED"),), (), 5)
        records = [UpdateRecord(5, UpdateKind.UPDATE, "o", b"+z", "c", 0.0)]
        core = self._recovered_core(
            clock, records=records, snapshot=snapshot, ckpt_seqno=4
        )
        group = core.groups["g"]
        assert group.state.get("o").materialized() == b"FOLDED+z"
        assert group.sequencer.next_seqno == 6
        assert group.log.first_seqno == 5

    def test_recovered_group_serves_joins(self, clock):
        records = [UpdateRecord(0, UpdateKind.UPDATE, "o", b"+a", "c", 0.0)]
        core = self._recovered_core(clock, records=records)
        driver = CoreDriver(core)
        conn = _client(driver, "alice")
        reply = _join(driver, conn, rid=1)
        assert reply.snapshot.objects == (ObjectState("o", b"INIT+a"),)
        assert reply.snapshot.next_seqno == 1
