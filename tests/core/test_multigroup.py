"""Scenarios with clients in several groups at once (paper Figure 2:
"Clients may belong to different groups")."""

import pytest

from repro.sim.harness import CoronaWorld


@pytest.fixture
def world():
    return CoronaWorld()


class TestMultiGroupClients:
    def test_client_in_two_groups_keeps_streams_separate(self, world):
        world.add_server()
        alice = world.add_client(client_id="alice")
        bob = world.add_client(client_id="bob")
        world.run()
        alice.call("create_group", "g1", True)
        alice.call("create_group", "g2", True)
        world.run()
        alice.call("join_group", "g1")
        alice.call("join_group", "g2")
        bob.call("join_group", "g1")
        world.run()
        alice.call("bcast_update", "g1", "o", b"one")
        alice.call("bcast_update", "g2", "o", b"two")
        world.run()
        assert alice.core.views["g1"].state.get("o").materialized() == b"one"
        assert alice.core.views["g2"].state.get("o").materialized() == b"two"
        # bob is only in g1: no g2 leakage
        assert "g2" not in bob.core.views
        assert bob.core.views["g1"].state.get("o").materialized() == b"one"

    def test_seqnos_are_per_group(self, world):
        server = world.add_server()
        alice = world.add_client(client_id="alice")
        world.run()
        alice.call("create_group", "g1", True)
        alice.call("create_group", "g2", True)
        world.run()
        alice.call("join_group", "g1")
        alice.call("join_group", "g2")
        world.run()
        for _ in range(3):
            alice.call("bcast_update", "g1", "o", b"x")
        alice.call("bcast_update", "g2", "o", b"y")
        world.run()
        assert server.core.groups["g1"].log.next_seqno == 3
        assert server.core.groups["g2"].log.next_seqno == 1

    def test_leaving_one_group_keeps_the_other(self, world):
        world.add_server()
        alice = world.add_client(client_id="alice")
        world.run()
        alice.call("create_group", "g1", True)
        alice.call("create_group", "g2", True)
        world.run()
        alice.call("join_group", "g1")
        alice.call("join_group", "g2")
        world.run()
        alice.call("leave_group", "g1")
        world.run()
        up = alice.call("bcast_update", "g2", "o", b"still-works")
        world.run()
        assert up.ok
        denied = alice.call("bcast_update", "g1", "o", b"nope")
        world.run()
        assert denied.error.code == "corona.not_a_member"

    def test_disconnect_removes_client_from_every_group(self, world):
        server = world.add_server()
        doomed = world.add_client(client_id="doomed")
        world.run()
        for name in ("a", "b", "c"):
            doomed.call("create_group", name, True)
        world.run()
        for name in ("a", "b", "c"):
            doomed.call("join_group", name)
        world.run()
        doomed.host.crash()
        world.run()
        for name in ("a", "b", "c"):
            assert len(server.core.groups[name]) == 0
            assert name in server.core.groups  # persistent: group survives

    def test_locks_are_per_group(self, world):
        world.add_server()
        alice = world.add_client(client_id="alice")
        bob = world.add_client(client_id="bob")
        world.run()
        alice.call("create_group", "g1", True)
        alice.call("create_group", "g2", True)
        world.run()
        for client in (alice, bob):
            client.call("join_group", "g1")
            client.call("join_group", "g2")
        world.run()
        got1 = alice.call("acquire_lock", "g1", "doc")
        world.run_for(1.0)
        assert got1.ok
        # same object id in the other group is an independent lock
        got2 = bob.call("acquire_lock", "g2", "doc")
        world.run_for(1.0)
        assert got2.ok

    def test_replicated_client_in_groups_on_different_servers(self, world):
        world.add_replicated_cluster(3, heartbeat_interval=0.5, suspicion_timeout=1.0)
        world.run_for(1.0)
        alice = world.add_client(client_id="alice", server="srv-1")
        bob = world.add_client(client_id="bob", server="srv-2")
        world.run_for(0.5)
        alice.call("create_group", "shared", True)
        alice.call("create_group", "mine", True)
        world.run_for(0.5)
        alice.call("join_group", "shared")
        alice.call("join_group", "mine")
        bob.call("join_group", "shared")
        world.run_for(1.0)
        alice.call("bcast_update", "shared", "o", b"both")
        alice.call("bcast_update", "mine", "o", b"solo")
        world.run_for(1.0)
        assert bob.core.views["shared"].state.get("o").materialized() == b"both"
        assert "mine" not in bob.core.views
        assert alice.core.views["mine"].state.get("o").materialized() == b"solo"
