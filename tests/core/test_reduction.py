"""Tests for state-log reduction policies."""

from repro.core.log import StateLog
from repro.core.reduction import (
    CompositeReduce,
    NeverReduce,
    ReduceByBytes,
    ReduceByCount,
)
from repro.core.state import SharedState
from repro.wire.messages import UpdateKind, UpdateRecord


def _log_with(n, payload=b"x"):
    log = StateLog()
    state = SharedState()
    for i in range(n):
        record = UpdateRecord(i, UpdateKind.UPDATE, "o", payload, "c", 0.0)
        log.append(record)
        state.apply(record)
    return log, state


def test_never_reduce():
    log, state = _log_with(10_000)
    assert not NeverReduce().should_reduce(log, state)


def test_reduce_by_count_below_threshold():
    log, state = _log_with(10)
    assert not ReduceByCount(max_records=10).should_reduce(log, state)


def test_reduce_by_count_above_threshold():
    log, state = _log_with(11)
    assert ReduceByCount(max_records=10).should_reduce(log, state)


def test_reduce_by_bytes():
    log, state = _log_with(4, payload=b"abc")  # 12 bytes retained
    assert not ReduceByBytes(max_bytes=12).should_reduce(log, state)
    assert ReduceByBytes(max_bytes=11).should_reduce(log, state)


def test_composite_any_triggers():
    log, state = _log_with(5, payload=b"1234")
    policy = CompositeReduce((ReduceByCount(100), ReduceByBytes(10)))
    assert policy.should_reduce(log, state)


def test_composite_none_triggers():
    log, state = _log_with(5)
    policy = CompositeReduce((ReduceByCount(100), ReduceByBytes(1000)))
    assert not policy.should_reduce(log, state)


def test_composite_empty_never_triggers():
    log, state = _log_with(5)
    assert not CompositeReduce(()).should_reduce(log, state)
