"""Property test: lock FIFO fairness and safety under random operations."""

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, rule

from repro.core.errors import LockNotHeldError
from repro.core.locks import LockTable

CLIENTS = ["a", "b", "c", "d"]
OBJECTS = ["x", "y"]


class LockMachine(RuleBasedStateMachine):
    """Model: per object, a holder plus a FIFO waiter queue."""

    def __init__(self):
        super().__init__()
        self.table = LockTable()
        self.holder = {o: None for o in OBJECTS}
        self.waiters = {o: [] for o in OBJECTS}
        self.rid = 0

    def _next_rid(self):
        self.rid += 1
        return self.rid

    @rule(obj=st.sampled_from(OBJECTS), client=st.sampled_from(CLIENTS),
          blocking=st.booleans())
    def acquire(self, obj, client, blocking):
        if any(c == client for c, _r in self.waiters[obj]):
            return  # a well-behaved client does not double-queue
        rid = self._next_rid()
        outcome = self.table.acquire(obj, client, rid, blocking)
        if self.holder[obj] is None or self.holder[obj] == client:
            assert outcome is True
            self.holder[obj] = client
        elif blocking:
            assert outcome is None
            self.waiters[obj].append((client, rid))
        else:
            assert outcome is False

    @rule(obj=st.sampled_from(OBJECTS), client=st.sampled_from(CLIENTS))
    def release(self, obj, client):
        if self.holder[obj] == client:
            grant = self.table.release(obj, client)
            if self.waiters[obj]:
                expected_client, expected_rid = self.waiters[obj].pop(0)
                assert grant is not None
                assert grant.client == expected_client
                assert grant.request_id == expected_rid
                self.holder[obj] = expected_client
            else:
                assert grant is None
                self.holder[obj] = None
        else:
            try:
                self.table.release(obj, client)
                assert False, "release by non-holder must raise"
            except LockNotHeldError:
                pass

    @rule(client=st.sampled_from(CLIENTS))
    def client_fails(self, client):
        grants = self.table.release_all(client)
        granted = {}
        for obj in OBJECTS:
            self.waiters[obj] = [
                (c, r) for c, r in self.waiters[obj] if c != client
            ]
            if self.holder[obj] == client:
                if self.waiters[obj]:
                    next_client, next_rid = self.waiters[obj].pop(0)
                    self.holder[obj] = next_client
                    granted[obj] = (next_client, next_rid)
                else:
                    self.holder[obj] = None
        assert {
            g.object_id: (g.client, g.request_id) for g in grants
        } == granted

    @invariant()
    def table_matches_model(self):
        for obj in OBJECTS:
            assert self.table.holder(obj) == self.holder[obj]
            assert self.table.waiting(obj) == len(self.waiters[obj])

    @invariant()
    def holder_never_waits_on_own_lock(self):
        for obj in OBJECTS:
            assert all(c != self.holder[obj] for c, _r in self.waiters[obj])


TestLockFairness = LockMachine.TestCase
TestLockFairness.settings = settings(
    max_examples=80, stateful_step_count=40, deadline=None
)
