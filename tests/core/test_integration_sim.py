"""Integration scenarios: full client/server stack under simulation.

These tests run real protocol cores over the simulated network — every
message is encoded, framed (size-accounted), delivered with latency and
CPU costs, and every reply travels back the same way.
"""

import pytest

from repro.core.server import ServerConfig, ServerCore
from repro.sim.harness import CoronaWorld
from repro.storage.store import GroupStore
from repro.wire.messages import (
    DeliveryMode,
    MemberRole,
    ObjectState,
    TransferPolicy,
    TransferSpec,
)


@pytest.fixture
def world():
    return CoronaWorld()


def _settle(world):
    world.run()


class TestBasicCollaboration:
    def test_create_join_bcast_roundtrip(self, world):
        world.add_server()
        alice = world.add_client(client_id="alice")
        bob = world.add_client(client_id="bob")
        _settle(world)
        assert alice.core.connected and bob.core.connected

        create = alice.call("create_group", "room", True, (ObjectState("doc", b"v0:"),))
        _settle(world)
        assert create.ok

        ja = alice.call("join_group", "room")
        jb = bob.call("join_group", "room")
        _settle(world)
        assert ja.ok and jb.ok
        assert ja.value.state.get("doc").materialized() == b"v0:"

        up = bob.call("bcast_update", "room", "doc", b"edit1")
        _settle(world)
        assert up.ok
        for client in (alice, bob):
            assert client.core.views["room"].state.get("doc").materialized() == b"v0:edit1"

    def test_total_order_consistent_across_clients(self, world):
        world.add_server()
        clients = [world.add_client(client_id=f"c{i}") for i in range(4)]
        _settle(world)
        clients[0].call("create_group", "g")
        _settle(world)
        for client in clients:
            client.call("join_group", "g")
        _settle(world)
        # all four blast concurrently
        for i, client in enumerate(clients):
            for j in range(3):
                client.call("bcast_update", "g", "o", f"{i}.{j};".encode())
        _settle(world)
        streams = [
            [d.record.data for _t, d in client.deliveries] for client in clients
        ]
        assert all(len(s) == 12 for s in streams)
        assert streams[0] == streams[1] == streams[2] == streams[3]
        # and the replicas converged byte-for-byte
        states = {
            client.core.views["g"].state.get("o").materialized()
            for client in clients
        }
        assert len(states) == 1

    def test_per_sender_fifo_holds(self, world):
        world.add_server()
        sender = world.add_client(client_id="sender")
        receiver = world.add_client(client_id="receiver")
        _settle(world)
        sender.call("create_group", "g")
        _settle(world)
        sender.call("join_group", "g")
        receiver.call("join_group", "g")
        _settle(world)
        for i in range(10):
            sender.call("bcast_update", "g", "o", bytes([i]))
        _settle(world)
        data = [d.record.data for _t, d in receiver.deliveries]
        assert data == [bytes([i]) for i in range(10)]
        # FifoChecker inside the view would have raised on violation
        assert receiver.core.views["g"].fifo.last_from("sender") == 9

    def test_exclusive_mode_end_to_end(self, world):
        world.add_server()
        alice = world.add_client(client_id="alice")
        bob = world.add_client(client_id="bob")
        _settle(world)
        alice.call("create_group", "g")
        _settle(world)
        alice.call("join_group", "g")
        bob.call("join_group", "g")
        _settle(world)
        before = len(alice.deliveries)
        ex = alice.call("bcast_update", "g", "o", b"quiet", DeliveryMode.EXCLUSIVE)
        _settle(world)
        assert ex.ok
        assert len(alice.deliveries) == before  # no echo to the sender
        assert bob.core.views["g"].state.get("o").materialized() == b"quiet"
        # a later inclusive message reveals the gap and splices it in
        bob.call("bcast_update", "g", "o", b"!")
        _settle(world)
        assert alice.core.views["g"].state.get("o").materialized() == b"quiet!"


class TestStateTransferPolicies:
    def _seeded_room(self, world, n_updates=5):
        world.add_server()
        writer = world.add_client(client_id="writer")
        _settle(world)
        writer.call("create_group", "g", True)
        _settle(world)
        writer.call("join_group", "g")
        _settle(world)
        for i in range(n_updates):
            writer.call("bcast_update", "g", "doc", b"u%d" % i)
        _settle(world)
        return writer

    def test_latest_n_join(self, world):
        self._seeded_room(world)
        late = world.add_client(client_id="late")
        _settle(world)
        join = late.call(
            "join_group", "g",
            transfer=TransferSpec(policy=TransferPolicy.LATEST_N, last_n=2),
        )
        _settle(world)
        view = join.value
        assert view.state.get("doc").materialized() == b"u3u4"
        assert view.next_seqno == 5

    def test_selected_objects_join(self, world):
        world.add_server()
        writer = world.add_client(client_id="writer")
        _settle(world)
        writer.call(
            "create_group", "g", True,
            (ObjectState("keep", b"K"), ObjectState("skip", b"S")),
        )
        _settle(world)
        late = world.add_client(client_id="late")
        _settle(world)
        join = late.call(
            "join_group", "g",
            transfer=TransferSpec(policy=TransferPolicy.SELECTED, object_ids=("keep",)),
        )
        _settle(world)
        view = join.value
        assert view.state.get("keep").base == b"K"
        assert "skip" not in view.state

    def test_reconnection_since_seqno(self, world):
        writer = self._seeded_room(world, n_updates=3)
        # simulated disconnection: leave, more updates happen, rejoin
        rejoiner = world.add_client(client_id="rejoiner")
        _settle(world)
        join1 = rejoiner.call("join_group", "g")
        _settle(world)
        assert join1.value.next_seqno == 3
        rejoiner.call("leave_group", "g")
        _settle(world)
        writer.call("bcast_update", "g", "doc", b"MISSED")
        _settle(world)
        join2 = rejoiner.call(
            "join_group", "g",
            transfer=TransferSpec(policy=TransferPolicy.SINCE_SEQNO, since_seqno=2),
        )
        _settle(world)
        assert [d for _s, d in join2.value.state.get("doc").increments] == [b"MISSED"]

    def test_join_is_fast_even_with_slow_members(self, world):
        """Corona's claim: join latency is independent of other members."""
        world.add_server()
        writer = self._seeded_room_noop = None  # readability placeholder
        writer = world.add_client(client_id="writer")
        _settle(world)
        writer.call("create_group", "g", True)
        _settle(world)
        writer.call("join_group", "g")
        _settle(world)
        # crash the only existing member: in ISIS-style systems the join
        # would now block on failure detection; in Corona it must not.
        writer.host.crash()
        world.run()
        newcomer = world.add_client(client_id="newcomer")
        _settle(world)
        start = world.now
        join = newcomer.call("join_group", "g")
        _settle(world)
        assert join.ok
        assert world.now - start < 0.1  # well under any failure timeout


class TestPersistenceAndRecovery:
    def test_server_crash_recovery_restores_groups(self, world, tmp_path):
        store = GroupStore(tmp_path / "server")
        server = world.add_server(store=store)
        alice = world.add_client(client_id="alice")
        _settle(world)
        alice.call("create_group", "g", True, (ObjectState("doc", b"base:"),))
        _settle(world)
        alice.call("join_group", "g")
        _settle(world)
        for i in range(3):
            alice.call("bcast_update", "g", "doc", b"u%d" % i)
        _settle(world)

        server.host.crash()
        world.run()

        # restart from the on-disk state, as after a process restart
        store2 = GroupStore(tmp_path / "server")
        server.host.store = store2
        core = ServerCore(
            ServerConfig(server_id="server"), world.kernel,
            recovered=store2.recover_all(),
        )
        server.host.restart(core)

        rejoiner = world.add_client(client_id="rejoiner")
        _settle(world)
        join = rejoiner.call("join_group", "g")
        _settle(world)
        assert join.ok
        assert join.value.state.get("doc").materialized() == b"base:u0u1u2"
        assert join.value.next_seqno == 3
        # sequencing continues where it left off
        rejoiner.call("bcast_update", "g", "doc", b"u3")
        _settle(world)
        assert rejoiner.core.views["g"].state.get("doc").materialized() == b"base:u0u1u2u3"

    def test_recovery_after_reduction_checkpoint(self, world, tmp_path):
        store = GroupStore(tmp_path / "server")
        server = world.add_server(store=store)
        alice = world.add_client(client_id="alice")
        _settle(world)
        alice.call("create_group", "g", True)
        _settle(world)
        alice.call("join_group", "g")
        _settle(world)
        for i in range(4):
            alice.call("bcast_update", "g", "doc", b"%d" % i)
        _settle(world)
        alice.call("reduce_log", "g")
        _settle(world)
        alice.call("bcast_update", "g", "doc", b"4")
        _settle(world)

        server.host.crash()
        world.run()
        store2 = GroupStore(tmp_path / "server")
        server.host.store = store2
        core = ServerCore(
            ServerConfig(server_id="server"), world.kernel,
            recovered=store2.recover_all(),
        )
        server.host.restart(core)
        late = world.add_client(client_id="late")
        _settle(world)
        join = late.call("join_group", "g")
        _settle(world)
        assert join.value.state.get("doc").materialized() == b"01234"

    def test_transient_group_not_recovered(self, world, tmp_path):
        store = GroupStore(tmp_path / "server")
        world.add_server(store=store)
        alice = world.add_client(client_id="alice")
        _settle(world)
        alice.call("create_group", "temp", False)  # transient
        _settle(world)
        alice.call("join_group", "temp")
        _settle(world)
        alice.call("leave_group", "temp")
        _settle(world)
        # the transient group died at null membership and was purged
        assert store.list_groups() == []


class TestMembershipAwareness:
    def test_join_leave_notifications(self, world):
        world.add_server()
        watcher = world.add_client(client_id="watcher")
        comer = world.add_client(client_id="comer")
        _settle(world)
        watcher.call("create_group", "g", True)
        _settle(world)
        watcher.call("join_group", "g", notify_membership=True)
        _settle(world)
        comer.call("join_group", "g")
        _settle(world)
        comer.call("leave_group", "g")
        _settle(world)
        notices = watcher.events_of_kind("membership")
        assert len(notices) == 2
        assert notices[0].joined[0].client_id == "comer"
        assert notices[1].left[0].client_id == "comer"

    def test_client_crash_generates_leave_notice(self, world):
        world.add_server()
        watcher = world.add_client(client_id="watcher")
        doomed = world.add_client(client_id="doomed")
        _settle(world)
        watcher.call("create_group", "g", True)
        _settle(world)
        watcher.call("join_group", "g", notify_membership=True)
        doomed.call("join_group", "g")
        _settle(world)
        doomed.host.crash()
        world.run()
        notices = watcher.events_of_kind("membership")
        assert notices and notices[-1].left[0].client_id == "doomed"

    def test_group_deleted_notice(self, world):
        world.add_server()
        owner = world.add_client(client_id="owner")
        member = world.add_client(client_id="member")
        _settle(world)
        owner.call("create_group", "g", True)
        _settle(world)
        member.call("join_group", "g")
        _settle(world)
        owner.call("delete_group", "g")
        _settle(world)
        assert member.events_of_kind("group_deleted") == ["g"]
        assert "g" not in member.core.views


class TestLocksEndToEnd:
    def test_lock_contention_and_handoff(self, world):
        world.add_server()
        alice = world.add_client(client_id="alice")
        bob = world.add_client(client_id="bob")
        _settle(world)
        alice.call("create_group", "g")
        _settle(world)
        alice.call("join_group", "g")
        bob.call("join_group", "g")
        _settle(world)
        got_a = alice.call("acquire_lock", "g", "o")
        world.run_for(1.0)
        assert got_a.ok
        got_b = bob.call("acquire_lock", "g", "o")
        world.run_for(1.0)  # bounded: a full drain would hit the timeout
        assert not got_b.done  # queued at the server
        alice.call("release_lock", "g", "o")
        world.run_for(1.0)
        assert got_b.ok


class TestStatelessComparator:
    def test_stateless_server_sequences_but_keeps_nothing(self, world):
        server = world.add_server(
            config=ServerConfig(server_id="server", stateful=False)
        )
        alice = world.add_client(client_id="alice")
        bob = world.add_client(client_id="bob")
        _settle(world)
        alice.call("create_group", "g")
        _settle(world)
        alice.call("join_group", "g")
        bob.call("join_group", "g")
        _settle(world)
        alice.call("bcast_update", "g", "o", b"x")
        _settle(world)
        # delivery still works with total order
        assert bob.core.views["g"].state.get("o").materialized() == b"x"
        # but the server kept nothing
        group = server.core.groups["g"]
        assert group.log.records() == ()
        assert len(group.state) == 0
        # and a late joiner gets no state
        late = world.add_client(client_id="late")
        _settle(world)
        join = late.call("join_group", "g")
        _settle(world)
        assert join.value.state.object_ids() == []
