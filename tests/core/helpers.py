"""Sans-io driver for unit-testing protocol cores without any host."""

from __future__ import annotations

import itertools
from typing import Any

from repro.core.events import (
    AppendWal,
    CancelTimer,
    CloseConnection,
    Effect,
    Notify,
    SendMessage,
    StartTimer,
    WriteCheckpoint,
)


class CoreDriver:
    """Feeds events into one core and indexes the resulting effects."""

    def __init__(self, core: Any) -> None:
        self.core = core
        self._conn_ids = itertools.count(100)
        self.effects: list[Effect] = []

    # -- driving -----------------------------------------------------------

    def connect(self, peer: str = "peer", key: str = "") -> int:
        conn = next(self._conn_ids)
        self.effects.extend(self.core.on_connected(conn, peer=peer, key=key))
        return conn

    def deliver(self, conn: int, message: Any) -> list[Effect]:
        effects = self.core.on_message(conn, message)
        self.effects.extend(effects)
        return effects

    def close(self, conn: int) -> list[Effect]:
        effects = self.core.on_closed(conn)
        self.effects.extend(effects)
        return effects

    def fire_timer(self, key: str) -> list[Effect]:
        effects = self.core.on_timer(key)
        self.effects.extend(effects)
        return effects

    def invoke(self, method: str, *args: Any, **kwargs: Any) -> Any:
        """Call a request method on the core and collect emitted effects."""
        result = getattr(self.core, method)(*args, **kwargs)
        self.effects.extend(self.core.drain())
        return result

    # -- inspection -----------------------------------------------------------

    def sent_to(self, conn: int, effects: list[Effect] | None = None) -> list[Any]:
        """Messages sent to *conn* (within *effects* or everything so far)."""
        pool = self.effects if effects is None else effects
        return [e.message for e in pool if isinstance(e, SendMessage) and e.conn == conn]

    def all_sends(self, effects: list[Effect] | None = None) -> list[SendMessage]:
        pool = self.effects if effects is None else effects
        return [e for e in pool if isinstance(e, SendMessage)]

    def of_type(self, effect_type: type, effects: list[Effect] | None = None) -> list[Effect]:
        pool = self.effects if effects is None else effects
        return [e for e in pool if isinstance(e, effect_type)]

    def notifications(self, kind: str | None = None) -> list[Notify]:
        out = [e for e in self.effects if isinstance(e, Notify)]
        if kind is not None:
            out = [e for e in out if e.kind == kind]
        return out

    def wal_appends(self) -> list[AppendWal]:
        return [e for e in self.effects if isinstance(e, AppendWal)]

    def checkpoints(self) -> list[WriteCheckpoint]:
        return [e for e in self.effects if isinstance(e, WriteCheckpoint)]

    def timers_started(self) -> list[StartTimer]:
        return [e for e in self.effects if isinstance(e, StartTimer)]

    def timers_cancelled(self) -> list[CancelTimer]:
        return [e for e in self.effects if isinstance(e, CancelTimer)]

    def closes(self) -> list[CloseConnection]:
        return [e for e in self.effects if isinstance(e, CloseConnection)]

    def clear(self) -> None:
        self.effects.clear()
