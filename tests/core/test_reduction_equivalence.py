"""Property: state-log reduction never changes observable state.

Random mixtures of bcastState/bcastUpdate across several objects, with
reductions injected at arbitrary points, must leave the server's
materialized state — and what a FULL-transfer joiner receives — identical
to a reference server that never reduces.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.clock import ManualClock
from repro.core.server import ServerConfig, ServerCore
from repro.wire.messages import (
    BcastStateRequest,
    BcastUpdateRequest,
    CreateGroupRequest,
    Hello,
    JoinGroupRequest,
    JoinReply,
    ReduceLogRequest,
)
from tests.core.helpers import CoreDriver

# an op is (is_state, object_index, payload, reduce_after)
_OPS = st.lists(
    st.tuples(
        st.booleans(),
        st.integers(0, 2),
        st.binary(min_size=1, max_size=6),
        st.booleans(),
    ),
    max_size=25,
)


def _run(ops, with_reduction):
    driver = CoreDriver(ServerCore(ServerConfig(persist=False), ManualClock()))
    conn = driver.connect()
    driver.deliver(conn, Hello(client_id="w"))
    rid = iter(range(1, 10_000))
    driver.deliver(conn, CreateGroupRequest(next(rid), "g", True))
    driver.deliver(conn, JoinGroupRequest(next(rid), "g"))
    for is_state, obj_idx, payload, reduce_after in ops:
        obj = f"obj-{obj_idx}"
        if is_state:
            driver.deliver(conn, BcastStateRequest(next(rid), "g", obj, payload))
        else:
            driver.deliver(conn, BcastUpdateRequest(next(rid), "g", obj, payload))
        if with_reduction and reduce_after:
            driver.deliver(conn, ReduceLogRequest(next(rid), "g"))
    # what a fresh FULL joiner would see
    joiner = driver.connect()
    driver.deliver(joiner, Hello(client_id="j"))
    effects = driver.deliver(joiner, JoinGroupRequest(next(rid), "g"))
    (reply,) = [
        m for m in driver.sent_to(joiner, effects) if isinstance(m, JoinReply)
    ]
    group = driver.core.groups["g"]
    materialized = {
        oid: group.state.get(oid).materialized()
        for oid in group.state.object_ids()
    }
    return materialized, reply.snapshot


@settings(max_examples=60, deadline=None)
@given(ops=_OPS)
def test_reduction_is_observably_transparent(ops):
    plain_state, plain_snapshot = _run(ops, with_reduction=False)
    reduced_state, reduced_snapshot = _run(ops, with_reduction=True)
    assert reduced_state == plain_state
    assert {o.object_id: o.data for o in reduced_snapshot.objects} == {
        o.object_id: o.data for o in plain_snapshot.objects
    }
    assert reduced_snapshot.next_seqno == plain_snapshot.next_seqno
