"""Tests for session-manager authorization."""

from repro.core.session import AclSessionManager, AllowAll, GroupAction


class TestAllowAll:
    def test_everything_permitted(self):
        manager = AllowAll()
        for action in GroupAction:
            assert manager.authorize("anyone", action, "any-group")


class TestAcl:
    def test_default_allow(self):
        manager = AclSessionManager()
        assert manager.authorize("alice", GroupAction.JOIN, "g")

    def test_default_deny(self):
        manager = AclSessionManager(default_allow=False)
        assert not manager.authorize("alice", GroupAction.JOIN, "g")

    def test_restriction_enforced(self):
        manager = AclSessionManager()
        manager.restrict("g", GroupAction.DELETE, {"admin"})
        assert manager.authorize("admin", GroupAction.DELETE, "g")
        assert not manager.authorize("alice", GroupAction.DELETE, "g")

    def test_restriction_scoped_to_group_and_action(self):
        manager = AclSessionManager()
        manager.restrict("g", GroupAction.DELETE, {"admin"})
        assert manager.authorize("alice", GroupAction.DELETE, "other")
        assert manager.authorize("alice", GroupAction.JOIN, "g")

    def test_wildcard(self):
        manager = AclSessionManager(default_allow=False)
        manager.restrict("g", GroupAction.JOIN, {"*"})
        assert manager.authorize("anyone", GroupAction.JOIN, "g")

    def test_replacing_restriction(self):
        manager = AclSessionManager()
        manager.restrict("g", GroupAction.CREATE, {"a"})
        manager.restrict("g", GroupAction.CREATE, {"b"})
        assert not manager.authorize("a", GroupAction.CREATE, "g")
        assert manager.authorize("b", GroupAction.CREATE, "g")
