"""Client reconnection: redial, rejoin, and incremental resync.

The paper's companion work ([15], referenced in §4.2) covers "client or
link failures and how to maintain state consistency through client
reconnection"; Corona's SINCE_SEQNO transfer is the mechanism.  These
tests cut the client's link mid-session and verify the replica catches
up with exactly the missed suffix.
"""

import pytest

from repro.sim.harness import CoronaWorld


@pytest.fixture
def world():
    return CoronaWorld()


def _link_cut(world, client, duration):
    world.network.partition({client.host_id}, {"server"})
    world.run_for(duration)
    world.network.heal()


def _setup(world, **client_kwargs):
    world.add_server()
    writer = world.add_client(client_id="writer")
    flaky = world.add_client(client_id="flaky", **client_kwargs)
    world.run()
    writer.call("create_group", "g", True)
    world.run()
    writer.call("join_group", "g")
    flaky.call("join_group", "g")
    world.run()
    writer.call("bcast_update", "g", "doc", b"before;")
    world.run()
    return writer, flaky


class TestAutoReconnect:
    def test_rejoin_resyncs_missed_suffix(self, world):
        writer, flaky = _setup(world, auto_reconnect=True)
        _link_cut(world, flaky, duration=2.0)
        # while flaky is gone, the world moves on
        writer.call("bcast_update", "g", "doc", b"missed;")
        world.run_for(1.0)
        world.run_for(10.0)  # give the backoff timer room to redial
        assert flaky.core.connected
        assert flaky.events_of_kind("rejoined")
        assert flaky.core.views["g"].state.get("doc").materialized() == b"before;missed;"

    def test_updates_flow_again_after_rejoin(self, world):
        writer, flaky = _setup(world, auto_reconnect=True)
        _link_cut(world, flaky, duration=2.0)
        world.run_for(10.0)
        writer.call("bcast_update", "g", "doc", b"after;")
        world.run_for(1.0)
        assert flaky.core.views["g"].state.get("doc").materialized() == b"before;after;"
        # and flaky can publish again
        up = flaky.call("bcast_update", "g", "doc", b"mine;")
        world.run_for(1.0)
        assert up.ok
        assert writer.core.views["g"].state.get("doc").materialized() == b"before;after;mine;"

    def test_backoff_retries_until_server_is_reachable(self, world):
        writer, flaky = _setup(world, auto_reconnect=True)
        _link_cut(world, flaky, duration=8.0)  # several failed attempts
        world.run_for(20.0)
        assert flaky.core.connected
        assert flaky.events_of_kind("reconnect_failed")  # it did struggle

    def test_rejoin_after_reduction_falls_back_to_full(self, world):
        writer, flaky = _setup(world, auto_reconnect=True)
        world.network.partition({flaky.host_id}, {"server"})
        world.run_for(1.0)
        writer.call("bcast_update", "g", "doc", b"lost-history;")
        world.run_for(0.5)
        writer.call("reduce_log", "g")  # the suffix flaky needs is trimmed
        world.run_for(0.5)
        world.network.heal()
        world.run_for(10.0)
        assert flaky.core.views["g"].state.get("doc").materialized() == b"before;lost-history;"

    def test_membership_recovers(self, world):
        writer, flaky = _setup(world, auto_reconnect=True)
        _link_cut(world, flaky, duration=2.0)
        world.run_for(10.0)
        reply = writer.call("get_membership", "g")
        world.run_for(0.5)
        assert sorted(m.client_id for m in reply.value) == ["flaky", "writer"]


class TestNoAutoReconnect:
    def test_default_client_stays_disconnected(self, world):
        writer, flaky = _setup(world)  # auto_reconnect=False (default)
        _link_cut(world, flaky, duration=2.0)
        world.run_for(10.0)
        assert not flaky.core.connected
        assert flaky.events_of_kind("disconnected")
        assert not flaky.events_of_kind("rejoined")
