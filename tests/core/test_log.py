"""Tests for the in-memory state log: ordering, suffixes, trimming."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import StaleStateError
from repro.core.log import StateLog
from repro.wire.messages import UpdateKind, UpdateRecord


def _record(seqno, data=b"x"):
    return UpdateRecord(seqno, UpdateKind.UPDATE, "o", data, "c", 0.0)


def _filled(n):
    log = StateLog()
    for i in range(n):
        log.append(_record(i, data=bytes([i])))
    return log


class TestAppend:
    def test_empty_log(self):
        log = StateLog()
        assert len(log) == 0
        assert log.next_seqno == 0
        assert log.last_seqno == -1
        assert log.size_bytes() == 0

    def test_contiguous_appends(self):
        log = _filled(3)
        assert len(log) == 3
        assert log.next_seqno == 3
        assert [r.seqno for r in log.records()] == [0, 1, 2]

    def test_gap_rejected(self):
        log = _filled(2)
        with pytest.raises(ValueError):
            log.append(_record(5))

    def test_duplicate_rejected(self):
        log = _filled(2)
        with pytest.raises(ValueError):
            log.append(_record(1))

    def test_size_bytes_tracks_payloads(self):
        log = StateLog()
        log.append(_record(0, b"12345"))
        log.append(_record(1, b"678"))
        assert log.size_bytes() == 8


class TestQueries:
    def test_since_returns_suffix(self):
        log = _filled(5)
        suffix = log.since(2)
        assert [r.seqno for r in suffix] == [3, 4]

    def test_since_minus_one_returns_everything(self):
        log = _filled(3)
        assert len(log.since(-1)) == 3

    def test_since_beyond_tip_is_empty(self):
        log = _filled(3)
        assert log.since(10) == ()

    def test_latest_n(self):
        log = _filled(5)
        assert [r.seqno for r in log.latest(2)] == [3, 4]

    def test_latest_more_than_available(self):
        log = _filled(2)
        assert len(log.latest(10)) == 2

    def test_latest_zero_or_negative(self):
        log = _filled(3)
        assert log.latest(0) == ()
        assert log.latest(-1) == ()


class TestTrim:
    def test_trim_drops_prefix(self):
        log = _filled(5)
        dropped = log.trim_to(2)
        assert dropped == 3
        assert len(log) == 2
        assert log.first_seqno == 3
        assert log.next_seqno == 5

    def test_trim_everything(self):
        log = _filled(3)
        log.trim_to(2)
        assert len(log) == 0
        assert log.next_seqno == 3  # seqnos keep counting after reduction

    def test_append_continues_after_full_trim(self):
        log = _filled(3)
        log.trim_to(2)
        log.append(_record(3))
        assert [r.seqno for r in log.records()] == [3]

    def test_since_raises_for_trimmed_history(self):
        log = _filled(5)
        log.trim_to(2)
        with pytest.raises(StaleStateError):
            log.since(0)

    def test_since_at_trim_boundary_is_ok(self):
        log = _filled(5)
        log.trim_to(2)
        assert [r.seqno for r in log.since(2)] == [3, 4]

    def test_trim_updates_size(self):
        log = StateLog()
        log.append(_record(0, b"aaaa"))
        log.append(_record(1, b"bb"))
        log.trim_to(0)
        assert log.size_bytes() == 2

    @given(st.integers(0, 30), st.integers(-1, 35))
    def test_trim_invariants(self, n, trim_at):
        log = _filled(n)
        log.trim_to(trim_at)
        assert log.next_seqno == max(n, trim_at + 1)
        assert all(r.seqno > trim_at for r in log.records())
        assert log.first_seqno == max(0, trim_at + 1)


class TestSliceViews:
    """since()/latest() are direct slices; they must match a naive scan."""

    @given(
        n=st.integers(min_value=0, max_value=40),
        trim_at=st.integers(min_value=-1, max_value=45),
        query=st.integers(min_value=-1, max_value=50),
    )
    def test_since_matches_naive_scan(self, n, trim_at, query):
        log = _filled(n)
        log.trim_to(trim_at)
        naive = tuple(r for r in log.records() if r.seqno > query)
        if query < log.first_seqno - 1:
            with pytest.raises(StaleStateError):
                log.since(query)
        else:
            assert log.since(query) == naive

    @given(
        n=st.integers(min_value=0, max_value=40),
        trim_at=st.integers(min_value=-1, max_value=45),
        k=st.integers(min_value=-2, max_value=50),
    )
    def test_latest_matches_naive_slice(self, n, trim_at, k):
        log = _filled(n)
        log.trim_to(trim_at)
        naive = log.records()[max(0, len(log) - k):] if k > 0 else ()
        assert log.latest(k) == naive

    def test_mutations_counter_tracks_structural_changes(self):
        log = StateLog()
        before = log.mutations
        log.append(_record(0))
        log.append(_record(1))
        assert log.mutations == before + 2
        log.trim_to(0)
        assert log.mutations == before + 3
        log.truncate_after(0)
        assert log.mutations == before + 4

    def test_queries_do_not_mutate(self):
        log = _filled(5)
        before = log.mutations
        log.since(2)
        log.latest(3)
        log.records()
        assert log.mutations == before
