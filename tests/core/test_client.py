"""Sans-io unit tests for the Corona client core."""

import pytest

from repro.core.client import ClientConfig, ClientCore, GroupView
from repro.core.clock import ManualClock
from repro.core.errors import (
    NoSuchGroupError,
    NotConnectedError,
    ProtocolError,
    RequestTimeoutError,
)
from repro.wire.messages import (
    Ack,
    BcastUpdateRequest,
    Delivery,
    DeliveryMode,
    ErrorReply,
    GroupDeletedNotice,
    Hello,
    HelloReply,
    JoinGroupRequest,
    JoinReply,
    LockGranted,
    MemberInfo,
    MemberRole,
    MembershipNotice,
    ObjectState,
    PingReply,
    StateSnapshot,
    UpdateKind,
    UpdateRecord,
)
from tests.core.helpers import CoreDriver


def _client(timeout=10.0):
    core = ClientCore(ClientConfig("alice", request_timeout=timeout), ManualClock())
    driver = CoreDriver(core)
    conn = driver.connect(key="server")
    driver.deliver(conn, HelloReply(server_id="s1"))
    return driver, conn


def _record(seqno, data=b"x", sender="bob", object_id="o", kind=UpdateKind.UPDATE):
    return UpdateRecord(seqno, kind, object_id, data, sender, 0.0)


def _snapshot(group="g", base=-1, objects=(), updates=(), next_seqno=0):
    return StateSnapshot(group, base, tuple(objects), tuple(updates), next_seqno)


def _joined(driver, conn, next_seqno=0, objects=()):
    rid = driver.invoke("join_group", "g")
    driver.deliver(
        conn,
        JoinReply(
            rid,
            _snapshot(objects=objects, next_seqno=next_seqno, base=next_seqno - 1),
            (MemberInfo("alice", MemberRole.PRINCIPAL),),
        ),
    )
    return rid


class TestHandshake:
    def test_hello_sent_on_connect(self):
        core = ClientCore(ClientConfig("alice"), ManualClock())
        driver = CoreDriver(core)
        conn = driver.connect(key="server")
        assert driver.sent_to(conn) == [Hello(client_id="alice")]

    def test_connected_notification(self):
        driver, _conn = _client()
        (note,) = driver.notifications("connected")
        assert note.payload == "s1"
        assert driver.core.connected
        assert driver.core.server_id == "s1"

    def test_non_server_connection_ignored(self):
        core = ClientCore(ClientConfig("alice"), ManualClock())
        driver = CoreDriver(core)
        driver.connect(key="other")
        assert driver.all_sends() == []

    def test_request_while_disconnected_raises(self):
        core = ClientCore(ClientConfig("alice"), ManualClock())
        with pytest.raises(NotConnectedError):
            core.ping()


class TestRequestReply:
    def test_ack_completes_request(self):
        driver, conn = _client()
        rid = driver.invoke("create_group", "g")
        assert driver.timers_started()[-1].key == f"req-{rid}"
        driver.deliver(conn, Ack(rid))
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert reply.ok and reply.request_id == rid and reply.kind == "create"
        assert driver.timers_cancelled()[-1].key == f"req-{rid}"

    def test_error_reply_reconstructs_exception(self):
        driver, conn = _client()
        rid = driver.invoke("join_group", "ghost")
        driver.deliver(conn, ErrorReply(rid, "corona.no_such_group", "nope"))
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert not reply.ok
        assert isinstance(reply.error, NoSuchGroupError)

    def test_timeout_fails_request(self):
        driver, conn = _client(timeout=5.0)
        rid = driver.invoke("ping")
        driver.fire_timer(f"req-{rid}")
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert isinstance(reply.error, RequestTimeoutError)

    def test_late_reply_after_timeout_ignored(self):
        driver, conn = _client()
        rid = driver.invoke("ping")
        driver.fire_timer(f"req-{rid}")
        driver.deliver(conn, PingReply(rid, 1.0))
        assert len(driver.notifications("reply")) == 1

    def test_unknown_timer_ignored(self):
        driver, _conn = _client()
        assert driver.fire_timer("other-timer") == []
        assert driver.fire_timer("req-9999") == []

    def test_disconnect_fails_pending_requests(self):
        driver, conn = _client()
        driver.invoke("ping")
        driver.close(conn)
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert isinstance(reply.error, NotConnectedError)
        assert driver.notifications("disconnected")
        assert not driver.core.connected

    def test_request_ids_unique(self):
        driver, _conn = _client()
        ids = {driver.invoke("ping") for _ in range(5)}
        assert len(ids) == 5

    def test_ping_reply_value(self):
        driver, conn = _client()
        rid = driver.invoke("ping")
        driver.deliver(conn, PingReply(rid, 123.5))
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert reply.value == 123.5

    def test_lock_granted_completes_acquire(self):
        driver, conn = _client()
        rid = driver.invoke("acquire_lock", "g", "o")
        driver.deliver(conn, LockGranted(rid, "g", "o"))
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert reply.ok and reply.value == "o"


class TestJoinAndViews:
    def test_join_builds_view_from_snapshot(self):
        driver, conn = _client()
        _joined(
            driver, conn, next_seqno=3,
            objects=(ObjectState("o", b"STATE"),),
        )
        view = driver.core.views["g"]
        assert view.state.get("o").materialized() == b"STATE"
        assert view.next_seqno == 3
        assert view.members == (MemberInfo("alice", MemberRole.PRINCIPAL),)

    def test_join_reply_value_is_view(self):
        driver, conn = _client()
        _joined(driver, conn)
        (reply,) = [n.payload for n in driver.notifications("reply")]
        assert isinstance(reply.value, GroupView)

    def test_snapshot_with_updates_applied(self):
        driver, conn = _client()
        rid = driver.invoke("join_group", "g")
        snapshot = _snapshot(
            base=1,
            updates=(_record(2, b"a"), _record(3, b"b")),
            next_seqno=4,
        )
        driver.deliver(conn, JoinReply(rid, snapshot, ()))
        view = driver.core.views["g"]
        assert view.state.get("o").materialized() == b"ab"
        assert view.next_seqno == 4

    def test_delivery_applies_to_view(self):
        driver, conn = _client()
        _joined(driver, conn)
        driver.deliver(conn, Delivery("g", _record(0, b"+1")))
        view = driver.core.views["g"]
        assert view.state.get("o").materialized() == b"+1"
        assert view.next_seqno == 1
        (event,) = [n.payload for n in driver.notifications("delivery")]
        assert event.group == "g" and event.record.seqno == 0

    def test_delivery_for_unjoined_group_still_notified(self):
        driver, conn = _client()
        driver.deliver(conn, Delivery("other", _record(0)))
        assert driver.notifications("delivery")

    def test_duplicate_delivery_rejected(self):
        driver, conn = _client()
        _joined(driver, conn)
        driver.deliver(conn, Delivery("g", _record(0)))
        with pytest.raises(ProtocolError):
            driver.deliver(conn, Delivery("g", _record(0)))

    def test_unexplained_gap_rejected(self):
        driver, conn = _client()
        _joined(driver, conn)
        with pytest.raises(ProtocolError):
            driver.deliver(conn, Delivery("g", _record(5)))

    def test_membership_notice_updates_view(self):
        driver, conn = _client()
        _joined(driver, conn)
        members = (
            MemberInfo("alice", MemberRole.PRINCIPAL),
            MemberInfo("bob", MemberRole.PRINCIPAL),
        )
        driver.deliver(
            conn,
            MembershipNotice("g", (MemberInfo("bob", MemberRole.PRINCIPAL),), (), members),
        )
        assert driver.core.views["g"].members == members
        assert driver.notifications("membership")

    def test_group_deleted_drops_view(self):
        driver, conn = _client()
        _joined(driver, conn)
        driver.deliver(conn, GroupDeletedNotice("g"))
        assert "g" not in driver.core.views
        assert driver.notifications("group_deleted")

    def test_fifo_checked_per_sender(self):
        driver, conn = _client()
        _joined(driver, conn)
        driver.deliver(conn, Delivery("g", _record(0, sender="bob")))
        driver.deliver(conn, Delivery("g", _record(1, sender="carol")))
        view = driver.core.views["g"]
        assert view.fifo.last_from("bob") == 0
        assert view.fifo.last_from("carol") == 1


class TestExclusiveMode:
    def test_exclusive_payload_spliced_into_gap(self):
        driver, conn = _client()
        _joined(driver, conn)
        rid = driver.invoke(
            "bcast_update", "g", "o", b"MINE", DeliveryMode.EXCLUSIVE
        )
        sent = driver.sent_to(conn)[-1]
        assert isinstance(sent, BcastUpdateRequest)
        driver.deliver(conn, Ack(rid))  # server sequenced it as seqno 0
        view = driver.core.views["g"]
        assert view.next_seqno == 0  # replica lags until the gap shows
        driver.deliver(conn, Delivery("g", _record(1, b"THEIRS", sender="bob")))
        assert view.state.get("o").materialized() == b"MINETHEIRS"
        assert view.next_seqno == 2

    def test_inclusive_bcast_needs_no_splice(self):
        driver, conn = _client()
        _joined(driver, conn)
        rid = driver.invoke("bcast_update", "g", "o", b"MINE")
        driver.deliver(conn, Delivery("g", _record(0, b"MINE", sender="alice")))
        driver.deliver(conn, Ack(rid))
        view = driver.core.views["g"]
        assert view.state.get("o").materialized() == b"MINE"
        assert not view.pending_exclusive

    def test_failed_exclusive_bcast_not_spliced(self):
        driver, conn = _client()
        _joined(driver, conn)
        rid = driver.invoke(
            "bcast_update", "g", "o", b"MINE", DeliveryMode.EXCLUSIVE
        )
        driver.deliver(conn, ErrorReply(rid, "corona.not_a_member", ""))
        assert not driver.core.views["g"].pending_exclusive

    def test_two_exclusive_gaps_fill_in_order(self):
        driver, conn = _client()
        _joined(driver, conn)
        r1 = driver.invoke("bcast_update", "g", "o", b"A", DeliveryMode.EXCLUSIVE)
        r2 = driver.invoke("bcast_update", "g", "o", b"B", DeliveryMode.EXCLUSIVE)
        driver.deliver(conn, Ack(r1))
        driver.deliver(conn, Ack(r2))
        driver.deliver(conn, Delivery("g", _record(2, b"C", sender="bob")))
        view = driver.core.views["g"]
        assert view.state.get("o").materialized() == b"ABC"
