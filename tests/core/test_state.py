"""Tests for the shared-state model: apply, fold, materialize."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import NoSuchObjectError
from repro.core.state import SharedObject, SharedState
from repro.wire.messages import ObjectState, UpdateKind, UpdateRecord


def _update(seqno, data, object_id="o", kind=UpdateKind.UPDATE, sender="c"):
    return UpdateRecord(seqno, kind, object_id, data, sender, 0.0)


class TestSharedObject:
    def test_update_appends_to_state(self):
        obj = SharedObject("o", base=b"base")
        obj.apply(_update(0, b"+a"))
        obj.apply(_update(1, b"+b"))
        assert obj.materialized() == b"base+a+b"
        assert obj.last_seqno == 1

    def test_state_overrides(self):
        obj = SharedObject("o", base=b"old")
        obj.apply(_update(0, b"+a"))
        obj.apply(_update(1, b"new", kind=UpdateKind.STATE))
        assert obj.materialized() == b"new"
        assert obj.base_seqno == 1
        assert obj.increments == []

    def test_update_after_state_appends_to_new_base(self):
        obj = SharedObject("o")
        obj.apply(_update(0, b"v1", kind=UpdateKind.STATE))
        obj.apply(_update(1, b"+x"))
        assert obj.materialized() == b"v1+x"

    def test_wrong_object_id_rejected(self):
        obj = SharedObject("o")
        with pytest.raises(ValueError):
            obj.apply(_update(0, b"x", object_id="other"))

    def test_fold_concatenates_prefix(self):
        obj = SharedObject("o", base=b"B")
        for i in range(4):
            obj.apply(_update(i, b"%d" % i))
        obj.fold(upto_seqno=2)
        assert obj.base == b"B012"
        assert obj.base_seqno == 2
        assert obj.increments == [(3, b"3")]
        assert obj.materialized() == b"B0123"

    def test_fold_everything(self):
        obj = SharedObject("o", base=b"B")
        obj.apply(_update(0, b"x"))
        obj.fold(upto_seqno=10)
        assert obj.base == b"Bx"
        assert obj.increments == []

    def test_fold_nothing_when_no_increments(self):
        obj = SharedObject("o", base=b"B", base_seqno=5)
        obj.fold(upto_seqno=10)
        assert obj.base == b"B"
        assert obj.base_seqno == 5

    def test_fold_below_first_increment_is_noop(self):
        obj = SharedObject("o", base=b"B")
        obj.apply(_update(5, b"x"))
        obj.fold(upto_seqno=4)
        assert obj.base == b"B"
        assert obj.increments == [(5, b"x")]

    def test_size_bytes(self):
        obj = SharedObject("o", base=b"1234")
        obj.apply(_update(0, b"56"))
        assert obj.size_bytes() == 6

    def test_initial_last_seqno(self):
        assert SharedObject("o").last_seqno == -1

    @given(st.lists(st.binary(max_size=16), max_size=20), st.integers(-1, 25))
    def test_fold_preserves_materialized_state(self, chunks, fold_at):
        """Folding never changes the materialized byte stream."""
        obj = SharedObject("o", base=b"S")
        for i, chunk in enumerate(chunks):
            obj.apply(_update(i, chunk))
        before = obj.materialized()
        obj.fold(fold_at)
        assert obj.materialized() == before


class TestSharedState:
    def test_initial_objects(self):
        state = SharedState((ObjectState("a", b"1"), ObjectState("b", b"2")))
        assert len(state) == 2
        assert state.get("a").base == b"1"
        assert "b" in state and "c" not in state

    def test_apply_creates_object_on_first_touch(self):
        state = SharedState()
        state.apply(_update(0, b"x", object_id="new"))
        assert state.get("new").materialized() == b"x"

    def test_missing_object_raises(self):
        with pytest.raises(NoSuchObjectError):
            SharedState().get("ghost")

    def test_materialize_all_in_insertion_order(self):
        state = SharedState()
        state.apply(_update(0, b"1", object_id="z"))
        state.apply(_update(1, b"2", object_id="a"))
        objects = state.materialize_all()
        assert [o.object_id for o in objects] == ["z", "a"]

    def test_materialize_selected(self):
        state = SharedState((ObjectState("a", b"1"), ObjectState("b", b"2")))
        selected = state.materialize_selected(("b",))
        assert selected == (ObjectState("b", b"2"),)

    def test_materialize_selected_missing_raises(self):
        with pytest.raises(NoSuchObjectError):
            SharedState().materialize_selected(("nope",))

    def test_fold_all_objects(self):
        state = SharedState()
        state.apply(_update(0, b"a", object_id="x"))
        state.apply(_update(1, b"b", object_id="y"))
        state.fold(1)
        assert state.get("x").increments == []
        assert state.get("y").increments == []

    def test_size_bytes_totals(self):
        state = SharedState((ObjectState("a", b"1234"),))
        state.apply(_update(0, b"56", object_id="a"))
        state.apply(_update(1, b"789", object_id="b"))
        assert state.size_bytes() == 9

    def test_object_ids(self):
        state = SharedState((ObjectState("a", b""), ObjectState("b", b"")))
        assert state.object_ids() == ["a", "b"]
