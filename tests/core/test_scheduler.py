"""Unit tests for the dependency-aware optimistic scheduler (sans-io).

The contract under test: with ``exec_lanes > 0`` and a batch bracketed
by ``begin_batch``/``end_batch``, the core emits an effect stream
*identical* to the strict-serial core — same frames, same order — while
the scheduler's counters record what speculation actually did.
"""

import pytest

from repro.core.clock import ManualClock
from repro.core.events import AppendWal, SendMessage
from repro.core.scheduler import (
    CommandScheduler,
    ExecutionEngine,
    ThreadPoolEngine,
    stable_lane,
)
from repro.core.server import ServerConfig, ServerCore
from repro.core.state import SharedState
from repro.wire.messages import (
    Ack,
    AcquireLockRequest,
    BcastStateRequest,
    BcastUpdateRequest,
    Delivery,
    ErrorReply,
    Hello,
    JoinGroupRequest,
    UpdateRecord,
)
from tests.core.helpers import CoreDriver


def _driver(exec_lanes=0, **config_kwargs):
    config = ServerConfig(server_id="s1", exec_lanes=exec_lanes, **config_kwargs)
    return CoreDriver(ServerCore(config, ManualClock()))


def _member(driver, client_id, group="g", create=False):
    conn = driver.connect()
    driver.deliver(conn, Hello(client_id=client_id))
    if create:
        from repro.wire.messages import CreateGroupRequest

        driver.deliver(conn, CreateGroupRequest(1, group))
    driver.deliver(conn, JoinGroupRequest(2, group))
    return conn


class TestStableLane:
    def test_deterministic_and_in_range(self):
        for lanes in (1, 2, 4, 7):
            for key in ("g:obj0", "g:obj1", "conn:42"):
                lane = stable_lane(key, lanes)
                assert 0 <= lane < lanes
                assert lane == stable_lane(key, lanes)

    def test_single_lane_short_circuits(self):
        assert stable_lane("anything", 1) == 0
        assert stable_lane("anything", 0) == 0

    def test_spreads_keys(self):
        lanes = {stable_lane(f"g:obj{i}", 4) for i in range(64)}
        assert lanes == {0, 1, 2, 3}


class TestDependencies:
    def test_deps_are_object_id_plus_held_locks(self):
        driver = _driver(exec_lanes=2)
        conn = _member(driver, "alice", create=True)
        driver.deliver(conn, AcquireLockRequest(3, "g", "doc"))
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(4, "g", "other", b"x"))
        (cmd,) = driver.core.scheduler._window
        assert cmd.deps == ("other", "doc")
        assert cmd.observed == (("other", None), ("doc", None))
        driver.effects.extend(driver.core.end_batch())

    def test_no_duplicate_dep_when_writing_held_object(self):
        driver = _driver(exec_lanes=2)
        conn = _member(driver, "alice", create=True)
        driver.deliver(conn, AcquireLockRequest(3, "g", "doc"))
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(4, "g", "doc", b"x"))
        (cmd,) = driver.core.scheduler._window
        assert cmd.deps == ("doc",)
        driver.effects.extend(driver.core.end_batch())

    def test_observed_version_tracks_last_seqno(self):
        driver = _driver(exec_lanes=2)
        conn = _member(driver, "alice", create=True)
        driver.deliver(conn, BcastUpdateRequest(3, "g", "doc", b"a"))
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(4, "g", "doc", b"b"))
        (cmd,) = driver.core.scheduler._window
        assert cmd.observed == (("doc", 0),)
        driver.effects.extend(driver.core.end_batch())


class TestSharedStateVersion:
    def test_missing_object_is_none(self):
        state = SharedState()
        assert state.version("doc") is None

    def test_version_is_last_applied_seqno(self):
        state = SharedState()
        from repro.wire.messages import UpdateKind

        state.apply(UpdateRecord(5, UpdateKind.UPDATE, "doc", b"x", "alice", 0.0))
        assert state.version("doc") == 5


class TestBatchEquivalence:
    """The headline invariant: batch mode replays the serial tail."""

    N = 8

    def _run(self, exec_lanes, conflict=False):
        driver = _driver(exec_lanes=exec_lanes)
        conns = [_member(driver, f"c{i}", create=(i == 0)) for i in range(3)]
        before = len(driver.effects)
        if exec_lanes:
            driver.core.begin_batch()
        for i in range(self.N):
            oid = "hot" if conflict and i % 2 == 0 else f"obj{i}"
            driver.deliver(
                conns[i % 3], BcastUpdateRequest(10 + i, "g", oid, bytes([i]))
            )
        if exec_lanes:
            driver.effects.extend(driver.core.end_batch())
        group = driver.core.groups["g"]
        return (
            driver.effects[before:],
            group.state.materialize_all(),
            driver.core.scheduler.stats if driver.core.scheduler else None,
        )

    def test_parallel_effects_equal_serial(self):
        serial, serial_state, _ = self._run(0)
        parallel, parallel_state, stats = self._run(4)
        assert parallel == serial
        assert parallel_state == serial_state
        assert stats.commands_parallel == self.N
        assert stats.conflicts == 0

    def test_conflicts_detected_and_reexecuted(self):
        serial, serial_state, _ = self._run(0, conflict=True)
        parallel, parallel_state, stats = self._run(4, conflict=True)
        assert parallel == serial
        assert parallel_state == serial_state
        # 4 "hot" writes in one window: every one after the first sees
        # the version move at commit time
        assert stats.conflicts == 3
        assert stats.reexecutions == 3

    def test_single_command_window_is_not_counted_parallel(self):
        driver = _driver(exec_lanes=4)
        conn = _member(driver, "alice", create=True)
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(10, "g", "doc", b"x"))
        driver.effects.extend(driver.core.end_batch())
        assert driver.core.scheduler.stats.commands_parallel == 0


class TestBarriers:
    def test_bcast_state_flushes_then_runs_serial(self):
        driver = _driver(exec_lanes=4)
        conn = _member(driver, "alice", create=True)
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(10, "g", "doc", b"+1"))
        assert driver.core.scheduler.pending == 1
        driver.deliver(conn, BcastStateRequest(11, "g", "doc", b"base"))
        # the STATE barrier committed the pending update first
        assert driver.core.scheduler.pending == 0
        driver.effects.extend(driver.core.end_batch())
        acks = [
            m.request_id
            for m in driver.sent_to(conn)
            if isinstance(m, Ack)
        ]
        assert acks[-2:] == [10, 11]

    def test_non_broadcast_message_flushes_window(self):
        driver = _driver(exec_lanes=4)
        conn = _member(driver, "alice", create=True)
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(10, "g", "doc", b"+1"))
        assert driver.core.scheduler.pending == 1
        driver.deliver(conn, AcquireLockRequest(11, "g", "doc"))
        assert driver.core.scheduler.pending == 0
        driver.effects.extend(driver.core.end_batch())

    def test_error_reply_flushes_first(self):
        driver = _driver(exec_lanes=4)
        conn = _member(driver, "alice", create=True)
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(10, "g", "doc", b"+1"))
        effects = driver.deliver(
            conn, BcastUpdateRequest(11, "nope", "doc", b"x")
        )
        assert driver.core.scheduler.pending == 0
        sent = [e.message for e in effects if isinstance(e, SendMessage)]
        # the pending command's effects precede the error reply
        assert any(isinstance(m, Ack) and m.request_id == 10 for m in sent)
        assert isinstance(sent[-1], ErrorReply)
        driver.effects.extend(driver.core.end_batch())

    def test_connection_close_flushes_window(self):
        driver = _driver(exec_lanes=4)
        conn = _member(driver, "alice", create=True)
        _member(driver, "bob")  # keeps the group alive after the close
        driver.core.begin_batch()
        driver.deliver(conn, BcastUpdateRequest(10, "g", "doc", b"+1"))
        driver.close(conn)
        assert driver.core.scheduler.pending == 0
        # the update committed (WAL-less config: state applied) before
        # the membership change processed
        assert driver.core.groups["g"].state.version("doc") == 0
        driver.effects.extend(driver.core.end_batch())


class TestEngines:
    def test_inline_engine_never_stalls(self):
        engine = ExecutionEngine()
        ran = []
        engine.dispatch(None, lambda: ran.append(1))
        assert ran == [1]
        assert engine.wait(None) is False
        engine.close()

    def test_thread_pool_engine_runs_and_joins(self):
        driver = _driver(exec_lanes=2)
        driver.core.scheduler.engine = ThreadPoolEngine(2, name="test-exec")
        conns = [_member(driver, f"c{i}", create=(i == 0)) for i in range(2)]
        before = len(driver.effects)
        driver.core.begin_batch()
        for i in range(6):
            driver.deliver(
                conns[i % 2], BcastUpdateRequest(10 + i, "g", f"o{i}", b"x")
            )
        driver.effects.extend(driver.core.end_batch())
        driver.core.scheduler.engine.close()
        deliveries = [
            e.message
            for e in driver.effects[before:]
            if isinstance(e, SendMessage) and e.conn == conns[0]
            and isinstance(e.message, Delivery)
        ]
        assert [d.update.seqno for d in deliveries] == list(range(6))

    def test_serial_config_has_no_scheduler(self):
        driver = _driver(exec_lanes=0)
        assert driver.core.scheduler is None
        # begin/end batch are harmless no-ops without a scheduler
        driver.core.begin_batch()
        assert driver.core.end_batch() == []


class TestWalParity:
    def test_wal_payloads_identical_to_serial(self):
        def run(exec_lanes):
            driver = _driver(exec_lanes=exec_lanes, persist=True)
            conn = _member(driver, "alice", create=True)
            before = len(driver.effects)
            if exec_lanes:
                driver.core.begin_batch()
            for i in range(5):
                driver.deliver(
                    conn, BcastUpdateRequest(10 + i, "g", f"o{i % 2}", b"x")
                )
            if exec_lanes:
                driver.effects.extend(driver.core.end_batch())
            return [
                (e.group, e.seqno, e.record)
                for e in driver.effects[before:]
                if isinstance(e, AppendWal)
            ]

        assert run(4) == run(0)
