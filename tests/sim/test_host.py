"""Tests for SimHost: CPU accounting, effects, timers, crash/restart."""

import pytest

from repro.core.events import (
    AppendWal,
    CancelTimer,
    CloseConnection,
    Notify,
    OpenConnection,
    ProtocolCore,
    SendMessage,
    StartTimer,
)
from repro.sim.host import SimHost
from repro.sim.kernel import SimKernel
from repro.sim.network import SimNetwork
from repro.sim.profiles import HostProfile
from repro.storage.store import GroupStore
from repro.wire import codec
from repro.wire.messages import Ack

FAST = HostProfile(
    name="fast", recv_overhead=0.001, send_overhead=0.001, per_byte=0.0,
    log_overhead=0.0,
)


class EchoCore(ProtocolCore):
    """Replies to every message with the same message."""

    def __init__(self):
        super().__init__()
        self.seen = []

    def handle_message(self, conn, message):
        self.seen.append(message)
        self.send(conn, message)


class DialerCore(ProtocolCore):
    """Dials a target on a timer and sends one Ack when connected."""

    def __init__(self, target):
        super().__init__()
        self.target = target
        self.conn = None
        self.received = []
        self.closed = 0

    def start(self):
        self.emit(OpenConnection(self.target, key="dial"))
        return []

    def handle_connected(self, conn, peer, key):
        self.conn = conn
        self.send(conn, Ack(1))

    def handle_message(self, conn, message):
        self.received.append(message)

    def handle_closed(self, conn):
        self.closed += 1


@pytest.fixture
def world():
    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment("lan", bytes_per_sec=1_000_000, latency=0.0005)
    return kernel, network


def _pair(kernel, network):
    server = SimHost(kernel, network, "server", "lan", FAST)
    server.set_core(EchoCore())
    client = SimHost(kernel, network, "client", "lan", FAST)
    core = DialerCore("server")
    client.set_core(core)
    client.invoke(core.start)
    kernel.run()
    return server, client, core


class TestMessaging:
    def test_echo_roundtrip(self, world):
        kernel, network = world
        server, client, core = _pair(kernel, network)
        assert core.received == [Ack(1)]
        assert server.core.seen == [Ack(1)]

    def test_stats_counted(self, world):
        kernel, network = world
        server, client, _ = _pair(kernel, network)
        size = codec.encoded_size(Ack(1)) + 4
        assert server.stats.messages_received == 1
        assert server.stats.messages_sent == 1
        assert server.stats.bytes_received == size
        assert client.stats.bytes_sent == size
        assert server.stats.cpu_busy == pytest.approx(0.002)

    def test_same_conn_sends_batch_into_one_flush(self, world):
        kernel, network = world

        class FanoutCore(ProtocolCore):
            def handle_connected(self, conn, peer, key):
                pass

            def handle_message(self, conn, message):
                for _ in range(10):
                    self.send(conn, message)

        server = SimHost(kernel, network, "server", "lan", FAST)
        server.set_core(FanoutCore())
        client = SimHost(kernel, network, "client", "lan", FAST)
        core = DialerCore("server")
        client.set_core(core)
        client.invoke(core.start)
        kernel.run()
        assert len(core.received) == 10
        # 10 consecutive sends to the SAME connection coalesce into one
        # batch: one recv charge + one send_cost(total) charge (per_byte
        # is 0 in the FAST profile, so the batch costs one overhead)
        assert server.stats.cpu_busy == pytest.approx(0.001 + 0.001)
        assert server.stats.messages_sent == 10

    def test_cpu_serializes_fanout_across_connections(self, world):
        kernel, network = world

        class BroadcastCore(ProtocolCore):
            """Rebroadcasts every message to all connected clients."""

            def __init__(self):
                super().__init__()
                self.conns = []

            def handle_connected(self, conn, peer, key):
                self.conns.append(conn)

            def handle_message(self, conn, message):
                for c in self.conns:
                    self.send(c, message)

        server = SimHost(kernel, network, "server", "lan", FAST)
        server.set_core(BroadcastCore())
        cores = []
        for i in range(10):
            client = SimHost(kernel, network, f"client-{i}", "lan", FAST)
            core = DialerCore("server")
            client.set_core(core)
            client.invoke(core.start)
            cores.append(core)
        kernel.run()
        # Each of the 10 inbound Acks is rebroadcast to the 10 clients:
        # sends to DISTINCT connections stay serialized (one send_cost
        # each), which is what keeps the paper's fan-out curves linear.
        total_sends = sum(len(c.received) for c in cores)
        assert total_sends == 100
        assert server.stats.cpu_busy == pytest.approx(
            10 * 0.001 + 100 * 0.001
        )

    def test_send_on_dead_conn_is_dropped(self, world):
        kernel, network = world

        class SendLate(ProtocolCore):
            def poke(self):
                self.emit(SendMessage(999, Ack(1)))
                return []

        host = SimHost(kernel, network, "h", "lan", FAST)
        core = SendLate()
        host.set_core(core)
        host.invoke(core.poke)
        kernel.run()
        assert host.stats.messages_sent == 0


class TestTimers:
    def test_timer_fires_once(self, world):
        kernel, network = world

        class TimerCore(ProtocolCore):
            def __init__(self):
                super().__init__()
                self.fired = []

            def arm(self):
                self.emit(StartTimer("tick", 1.0))
                return []

            def handle_timer(self, key):
                self.fired.append(key)

        host = SimHost(kernel, network, "h", "lan", FAST)
        core = TimerCore()
        host.set_core(core)
        host.invoke(core.arm)
        kernel.run()
        assert core.fired == ["tick"]
        assert kernel.now() >= 1.0

    def test_rearming_replaces_previous(self, world):
        kernel, network = world

        class TimerCore(ProtocolCore):
            def __init__(self):
                super().__init__()
                self.fired = 0

            def arm_twice(self):
                self.emit(StartTimer("t", 1.0))
                self.emit(StartTimer("t", 2.0))
                return []

            def handle_timer(self, key):
                self.fired += 1

        host = SimHost(kernel, network, "h", "lan", FAST)
        core = TimerCore()
        host.set_core(core)
        host.invoke(core.arm_twice)
        kernel.run()
        assert core.fired == 1
        assert kernel.now() >= 2.0

    def test_cancel_timer(self, world):
        kernel, network = world

        class TimerCore(ProtocolCore):
            def __init__(self):
                super().__init__()
                self.fired = 0

            def arm_and_cancel(self):
                self.emit(StartTimer("t", 1.0))
                self.emit(CancelTimer("t"))
                return []

            def handle_timer(self, key):
                self.fired += 1

        host = SimHost(kernel, network, "h", "lan", FAST)
        core = TimerCore()
        host.set_core(core)
        host.invoke(core.arm_and_cancel)
        kernel.run()
        assert core.fired == 0


class TestDiskAndStore:
    def test_async_logging_off_critical_path(self, world):
        kernel, network = world

        class Logger(ProtocolCore):
            def log(self):
                self.emit(AppendWal("g", 0, b"x" * 4000))
                return []

        host = SimHost(kernel, network, "h", "lan", FAST)
        core = Logger()
        host.set_core(core)
        before = host.cpu_free_at
        host.invoke(core.log, cost=0.0)
        kernel.run()
        assert host.disk.ops == 1
        assert host.cpu_free_at == pytest.approx(before)  # CPU not stalled

    def test_sync_logging_stalls_cpu(self, world):
        kernel, network = world

        class Logger(ProtocolCore):
            def log(self):
                self.emit(AppendWal("g", 0, b"x" * 4_000_000))
                return []

        host = SimHost(kernel, network, "h", "lan", FAST, sync_logging=True)
        core = Logger()
        host.set_core(core)
        host.invoke(core.log, cost=0.0)
        kernel.run()
        assert host.cpu_free_at >= 1.0  # ~1 s at 4 MB/s

    def test_wal_effect_persists_via_store(self, world, tmp_path):
        kernel, network = world
        store = GroupStore(tmp_path / "s")
        store.create_group("g")

        class Logger(ProtocolCore):
            def log(self):
                self.emit(AppendWal("g", 7, b"record"))
                return []

        host = SimHost(kernel, network, "h", "lan", FAST, store=store)
        core = Logger()
        host.set_core(core)
        host.invoke(core.log)
        kernel.run()
        assert store.recover("g").records == [(7, b"record")]


class TestNotify:
    def test_notify_reaches_handler(self, world):
        kernel, network = world

        class Notifier(ProtocolCore):
            def fire(self):
                self.emit(Notify("update", {"x": 1}))
                return []

        host = SimHost(kernel, network, "h", "lan", FAST)
        core = Notifier()
        host.set_core(core)
        events = []
        host.on_notify(lambda kind, payload: events.append((kind, payload)))
        host.invoke(core.fire)
        kernel.run()
        assert events == [("update", {"x": 1})]
        assert host.stats.notifications == 1


class TestCrashRestart:
    def test_crash_closes_connections_and_stops_core(self, world):
        kernel, network = world
        server, client, core = _pair(kernel, network)
        server.crash()
        kernel.run()
        assert core.closed == 1
        assert not server.alive

    def test_crashed_host_ignores_traffic(self, world):
        kernel, network = world
        server, client, core = _pair(kernel, network)
        server.crash()
        kernel.run()
        before = server.stats.messages_received
        client.invoke(lambda: [SendMessage(core.conn, Ack(2))])
        kernel.run()
        assert server.stats.messages_received == before

    def test_restart_accepts_new_connections(self, world):
        kernel, network = world
        server, client, core = _pair(kernel, network)
        server.crash()
        kernel.run()
        server.restart(EchoCore())
        core2 = DialerCore("server")
        client2 = SimHost(kernel, network, "client2", "lan", FAST)
        client2.set_core(core2)
        client2.invoke(core2.start)
        kernel.run()
        assert core2.received == [Ack(1)]

    def test_restart_while_alive_rejected(self, world):
        kernel, network = world
        host = SimHost(kernel, network, "h", "lan", FAST)
        host.set_core(EchoCore())
        with pytest.raises(RuntimeError):
            host.restart(EchoCore())

    def test_connect_failure_surfaces_as_closed_conn(self, world):
        kernel, network = world
        client = SimHost(kernel, network, "client", "lan", FAST)
        core = DialerCore("nonexistent")
        client.set_core(core)
        client.invoke(core.start)
        kernel.run()
        assert core.closed == 1
