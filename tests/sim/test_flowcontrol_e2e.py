"""End-to-end flow control in the simulator (full client/server stack).

A LAN blaster saturates a modem member's downlink:

* superseded ``bcastState`` frames coalesce in the server's bounded
  outbox and the modem client fast-forwards over the announced gaps
  (``Delivery.skipped``) while still converging on the final state;
* non-coalescible ``bcastUpdate`` floods lag-kick the modem member,
  which learns why via ``NOTIFY_KICKED``.

The autouse trace fixture (tests/conftest.py) runs tracecheck over both
scenarios, so they double as proof that the §4.1 ordering invariants
hold in the presence of coalescing gaps — the client's own contiguity
check (``GroupView.apply_delivery``) raises on any unexplained gap.
"""

from repro.core.events import NOTIFY_KICKED
from repro.net.flowcontrol import FlowControlConfig
from repro.sim.harness import CoronaWorld
from repro.sim.profiles import MODEM_28_8

FLOW = FlowControlConfig(
    max_outbox_frames=256,
    max_outbox_bytes=8 * 1024 * 1024,
    coalesce_watermark=4,
    link_window=0.25,
)

KICK_FLOW = FlowControlConfig(
    max_outbox_frames=16,
    max_outbox_bytes=1 << 20,
    coalesce_watermark=4,
    link_window=0.25,
)


def _mixed_speed_room(flow):
    world = CoronaWorld()
    world.add_segment("modem", MODEM_28_8)
    server = world.add_server(flow=flow)
    fast = world.add_client("fast")
    slow = world.add_client("slow", segment="modem")
    world.run()
    fast.call("create_group", "g", True)
    world.run()
    fast.call("join_group", "g")
    slow.call("join_group", "g")
    world.run()
    return world, server, fast, slow


def _blast(world, sender, method, count, interval, size):
    start = world.now + 0.5

    def send(i):
        sender.call(method, "g", "obj", bytes([i % 251]) * size)

    for i in range(count):
        world.kernel.schedule_at(start + i * interval, send, i)
    world.run()


class TestCoalescingEndToEnd:
    def test_slow_member_skips_superseded_states_and_converges(self):
        world, server, fast, slow = _mixed_speed_room(FLOW)
        count = 50
        _blast(world, fast, "bcast_state", count, interval=0.01, size=1500)

        stats = server.host.dispatch_stats
        assert stats.outbox_coalesced > 0
        assert stats.outbox_kicks == 0

        # the modem member received fewer frames than were broadcast —
        # superseded STATE frames never crossed its link...
        slow_seqnos = [d.record.seqno for _t, d in slow.deliveries]
        assert 0 < len(slow_seqnos) < count
        assert slow_seqnos == sorted(slow_seqnos)

        # ...yet both members consumed the full sequence (the skipped
        # annotations explained every gap; apply_delivery would have
        # raised otherwise) and agree on the final object state.
        fast_view = fast.core.views["g"]
        slow_view = slow.core.views["g"]
        assert slow_view.next_seqno == fast_view.next_seqno
        final = bytes([(count - 1) % 251]) * 1500
        assert fast_view.state.get("obj").materialized() == final
        assert slow_view.state.get("obj").materialized() == final

    def test_lan_member_sees_every_frame(self):
        world, server, fast, slow = _mixed_speed_room(FLOW)
        count = 50
        before = len(fast.deliveries)
        _blast(world, fast, "bcast_state", count, interval=0.01, size=1500)
        # coalescing is per-connection: the uncongested member's frames
        # are untouched
        assert len(fast.deliveries) - before == count


class TestLagKickEndToEnd:
    def test_unrecoverable_consumer_is_kicked_with_reason(self):
        world, server, fast, slow = _mixed_speed_room(KICK_FLOW)
        count = 60
        before = len(fast.deliveries)
        _blast(world, fast, "bcast_update", count, interval=0.005, size=1500)

        stats = server.host.dispatch_stats
        assert stats.outbox_kicks == 1
        assert stats.outbox_coalesced == 0  # updates are never coalesced

        # the victim learned why it lost the connection
        kicked = slow.events_of_kind(NOTIFY_KICKED)
        assert len(kicked) == 1

        # the blast continued for the healthy member
        assert len(fast.deliveries) - before == count
