"""Seeded chaos tests for live group migration.

Every scenario runs under virtual time (deterministic by construction)
and, via the suite conftest, doubles as a tracecheck ordering check and
a happens-before race check.  The invariants:

* **Delivery parity** — migrating a group mid-stream changes *when*
  things happen, never *what* is delivered: per (client, group) the
  delivery stream is byte-identical to the same workload without the
  migration.
* **Crash mid-migration aborts cleanly** — whichever side dies, the
  source keeps the lease, the epoch does not move, and no accepted
  command is lost (freeze-buffered commands replay on the source).
* **Membership churn** mid-migration (joins/leaves landing in the
  freeze buffer) replays to a consistent view on the new owner.
* **ListGroups exactly-once** — a scatter-gather racing a migration
  still reports every group exactly once, name-sorted.
"""

import pytest

from repro.core.server import ServerConfig
from repro.sim.harness import CoronaWorld

SHARDS = 3


def _build(tmp_path, persist=True, n_groups=3, members=2, suffix=""):
    world = CoronaWorld()
    server = world.add_sharded_server(
        shards=SHARDS,
        store_root=tmp_path / f"shards{suffix}" if persist else None,
        config=ServerConfig(
            server_id="server", stateful=True, persist=persist
        ),
    )
    clients = [world.add_client(client_id=f"c{i}") for i in range(members)]
    world.run()
    groups = [f"room-{i}" for i in range(n_groups)]
    for group in groups:
        created = clients[0].call("create_group", group, persist)
        world.run()
        assert created.ok
        joins = [client.call("join_group", group) for client in clients]
        world.run()
        assert all(j.ok for j in joins)
    return world, server, clients, groups


def _delivery_streams(clients):
    """Per (client, group): the full delivery stream, time excluded."""
    streams = {}
    for client in clients:
        for _t, event in client.deliveries:
            rec = event.record
            streams.setdefault((client.client_id, event.group), []).append(
                (rec.seqno, rec.kind, rec.object_id, rec.data, rec.sender)
            )
    return streams


class TestDeliveryParity:
    def _run(self, tmp_path, migrate: bool):
        world, server, clients, groups = _build(
            tmp_path, persist=False, suffix=f"-{migrate}"
        )
        host = server.host
        # grow every group's state first so each snapshot is big enough
        # to open a real freeze window (the stream cost is modelled in
        # virtual time) — otherwise nothing would ever buffer and the
        # parity claim would be vacuous
        seeded = [clients[0].call("bcast_state", g, "bulk", bytes(100_000))
                  for g in groups]
        world.run()
        assert all(s.ok for s in seeded)
        start = world.now
        # identical offered load in both runs: fixed-time sends that
        # straddle the (optional) migration windows
        for n in range(60):
            sender = clients[n % len(clients)]
            sender.at(
                start + 0.01 + n * 0.002,
                "bcast_update", groups[n % len(groups)], "doc",
                b"payload-%d" % n,
            )
        if migrate:
            for i, group in enumerate(groups):
                dst = (host.router.route(group) + 1) % SHARDS
                world.kernel.schedule_at(
                    start + 0.03 + i * 0.02, host.migrate_group, group, dst
                )
        world.run()
        if migrate:
            committed = [r for r in host.sessions.migration_log
                         if r.outcome == "committed"]
            assert len(committed) == len(groups)
            assert sum(r.buffered for r in committed) > 0, (
                "no command crossed a freeze window; parity is vacuous"
            )
        return _delivery_streams(clients)

    def test_migration_preserves_delivery_streams(self, tmp_path):
        baseline = self._run(tmp_path, migrate=False)
        migrated = self._run(tmp_path, migrate=True)
        assert migrated == baseline


class TestCrashMidMigration:
    def _start_migration(self, world, host, group, dst):
        host.migrate_group(group, dst)
        assert host.sessions.migrations().get(group) == "freezing"

    def test_dst_crash_while_installing_aborts_to_source(self, tmp_path):
        world, server, clients, groups = _build(tmp_path, n_groups=1)
        a, b = clients
        host, group = server.host, groups[0]
        src = host.router.route(group)
        dst = (src + 1) % SHARDS
        self._start_migration(world, host, group, dst)
        # commands accepted while frozen land in the migration buffer
        buffered = [a.call("bcast_update", group, "doc", b"frozen-%d" % i)
                    for i in range(3)]
        # step until the snapshot streamed and the install is in flight
        for _ in range(500):
            if host.sessions.migrations().get(group) == "installing":
                break
            world.run(1)
        assert host.sessions.migrations().get(group) == "installing"
        host.restart_shard(dst)
        world.run()
        # source keeps the lease, the epoch never moved
        assert host.router.route(group) == src
        assert host.router.epoch(group) == 0
        assert group in host.workers[src].core.runtimes
        assert group not in host.workers[dst].core.runtimes
        assert host.sessions.migration_log[-1].outcome == "aborted"
        # nothing lost: the freeze-buffered commands replayed on the
        # source and were delivered
        assert all(c.ok for c in buffered)
        streams = _delivery_streams([b])
        payloads = [d for (_s, _k, _o, d, _snd) in streams[("c1", group)]]
        assert payloads[-3:] == [b"frozen-0", b"frozen-1", b"frozen-2"]
        sent = a.call("bcast_update", group, "doc", b"after-abort")
        world.run()
        assert sent.ok

    def test_src_crash_while_freezing_keeps_lease_and_state(self, tmp_path):
        world, server, clients, groups = _build(tmp_path, n_groups=1)
        a, _b = clients
        host, group = server.host, groups[0]
        seqno_before = host.workers[
            host.router.route(group)
        ].core.runtimes[group].group.log.next_seqno
        src = host.router.route(group)
        dst = (src + 1) % SHARDS
        self._start_migration(world, host, group, dst)
        host.restart_shard(src)
        world.run()
        assert host.router.route(group) == src
        assert host.router.epoch(group) == 0
        # recovered from its own store: the WAL never left the source
        assert group in host.workers[src].core.runtimes
        assert group not in host.workers[dst].core.runtimes
        assert host.sessions.migration_log[-1].outcome == "aborted"
        runtime = host.workers[src].core.runtimes[group]
        assert runtime.group.log.next_seqno == seqno_before
        # membership is not durable: clients re-join, then resume
        rejoined = a.call("join_group", group)
        world.run()
        assert rejoined.ok
        sent = a.call("bcast_update", group, "doc", b"after-src-crash")
        world.run()
        assert sent.ok


class TestChurnMidMigration:
    def test_membership_churn_in_freeze_buffer(self, tmp_path):
        world, server, clients, groups = _build(tmp_path, n_groups=1)
        a, b = clients
        host, group = server.host, groups[0]
        joiner = world.add_client(client_id="late")
        world.run()
        dst = (host.router.route(group) + 1) % SHARDS
        host.migrate_group(group, dst)
        assert host.sessions.migrations().get(group) == "freezing"
        # churn lands in the freeze buffer and replays on the new owner
        joined = joiner.call("join_group", group)
        left = b.call("leave_group", group)
        world.run()
        assert joined.ok and left.ok
        assert host.router.route(group) == dst
        assert host.sessions.migration_log[-1].outcome == "committed"
        members = {
            m.client_id
            for m in host.workers[dst].core.runtimes[group].group.members()
        }
        assert members == {"c0", "late"}
        before = len(joiner.deliveries)
        sent = a.call("bcast_update", group, "doc", b"post-churn")
        world.run()
        assert sent.ok
        assert len(joiner.deliveries) == before + 1
        # the leave replayed too: the departed member got nothing
        assert not [1 for _t, e in b.deliveries if e.group == group]

    def test_list_groups_exactly_once_during_migration(self, tmp_path):
        world, server, clients, groups = _build(tmp_path, n_groups=6)
        a, _b = clients
        host = server.host
        # start migrations for half the groups, then scatter-gather while
        # they are frozen/in flight
        for group in groups[::2]:
            host.migrate_group(group, (host.router.route(group) + 1) % SHARDS)
        assert host.sessions.migrations()
        listed = a.call("list_groups")
        world.run()
        assert listed.ok
        names = [info.name for info in listed.value]
        assert names == sorted(groups), names
        assert len(names) == len(set(names)), "a group was counted twice"
        assert all(
            r.outcome == "committed" for r in host.sessions.migration_log
        )


class TestMigrationBlast:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_racing_blast_with_migrations(self, tmp_path, seed):
        """Sends racing a rolling wave of migrations: everything accepted
        is delivered exactly once to every member, per-group FIFO."""
        world, server, clients, groups = _build(
            tmp_path, persist=False, n_groups=4, suffix=f"-{seed}"
        )
        host = server.host
        start = world.now
        for n in range(40):
            sender = clients[(n + seed) % len(clients)]
            sender.at(
                start + 0.005 + n * 0.003,
                "bcast_update", groups[(n + seed) % len(groups)], "obj",
                b"s%d-%d" % (seed, n),
            )
        for i, group in enumerate(groups):
            dst = (host.router.route(group) + 1 + seed) % SHARDS
            if dst == host.router.route(group):
                dst = (dst + 1) % SHARDS
            world.kernel.schedule_at(
                start + 0.02 + i * 0.015, host.migrate_group, group, dst
            )
        world.run()
        assert all(r.outcome == "committed"
                   for r in host.sessions.migration_log)
        streams = _delivery_streams(clients)
        for group in groups:
            per_client = [streams.get((c.client_id, group), [])
                          for c in clients]
            # every member saw the identical stream (same order, no
            # duplicates, no gaps: seqnos strictly increasing)
            assert per_client[0] == per_client[1]
            seqnos = [s for (s, *_rest) in per_client[0]]
            assert seqnos == sorted(set(seqnos))
