"""Tests for the IP-multicast network primitive and server mode (§5.3)."""

import pytest

from repro.core.server import ServerConfig
from repro.sim.harness import CoronaWorld
from repro.sim.kernel import SimKernel
from repro.sim.network import SimNetwork
from tests.sim.test_network import Recorder


@pytest.fixture
def net():
    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment("lan", bytes_per_sec=1_000_000, latency=0.001)
    return kernel, network


def _host(network, name, segment="lan"):
    adapter = Recorder()
    network.attach(name, segment, adapter)
    return adapter


def _connected(kernel, network, names, hub="hub"):
    _host(network, hub)
    adapters = {}
    channels = {}
    hub_adapter = network._adapters[hub]
    for name in names:
        adapters[name] = _host(network, name)
        network.connect(hub, name)
    kernel.run()
    for channel, _inbound, _key in hub_adapter.connected:
        channels[channel.peer_of(hub)] = channel
    return adapters, channels


class TestMulticastPrimitive:
    def test_single_segment_single_transmission(self, net):
        kernel, network = net
        adapters, channels = _connected(kernel, network, ["a", "b", "c"])
        before = network.bytes_sent
        network.multicast("hub", list(channels.values()), "m", 100_000)
        kernel.run()
        # all three got it, but the wire carried exactly one copy
        for name in ("a", "b", "c"):
            assert [m for m, _s, _c in adapters[name].messages] == ["m"]
        assert network.bytes_sent - before == 100_000

    def test_same_segment_receivers_hear_one_transmission_together(self, net):
        kernel, network = net
        adapters, channels = _connected(kernel, network, ["a", "b"])
        network.multicast("hub", list(channels.values()), "m", 50_000)
        kernel.run()
        # both deliveries happen at the same virtual instant (one carrier)
        times = []
        # recompute by re-running with timestamps via a fresh kernel is
        # overkill; instead check byte accounting implies one transmission
        assert network.bytes_sent == 50_000

    def test_cross_segment_pays_one_copy_per_segment(self, net):
        kernel, network = net
        network.add_segment("far", bytes_per_sec=1_000_000, latency=0.001)
        _host(network, "hub")
        near = _host(network, "near", "lan")
        far = _host(network, "far-host", "far")
        network.connect("hub", "near")
        network.connect("hub", "far-host")
        kernel.run()
        hub_channels = [c for c, _i, _k in network._adapters["hub"].connected]
        before = network.bytes_sent
        network.multicast("hub", hub_channels, "m", 10_000)
        kernel.run()
        assert [m for m, _s, _c in near.messages] == ["m"]
        assert [m for m, _s, _c in far.messages] == ["m"]
        assert network.bytes_sent - before == 20_000  # one copy per segment

    def test_closed_channels_skipped(self, net):
        kernel, network = net
        adapters, channels = _connected(kernel, network, ["a", "b"])
        network.close(channels["a"], "hub")
        network.multicast("hub", list(channels.values()), "m", 1000)
        kernel.run()
        assert adapters["a"].messages == []
        assert [m for m, _s, _c in adapters["b"].messages] == ["m"]

    def test_empty_target_list_is_noop(self, net):
        kernel, network = net
        _host(network, "hub")
        network.multicast("hub", [], "m", 1000)
        assert network.messages_sent == 0


class TestMulticastServerMode:
    def _world(self, use_multicast):
        world = CoronaWorld()
        world.add_server(
            config=ServerConfig(server_id="server", use_multicast=use_multicast)
        )
        clients = [world.add_client(client_id=f"c{i}") for i in range(8)]
        world.run()
        clients[0].call("create_group", "g", True)
        world.run()
        for client in clients:
            client.call("join_group", "g")
        world.run()
        return world, clients

    def test_same_deliveries_either_mode(self):
        states = {}
        for mode in (False, True):
            world, clients = self._world(mode)
            clients[0].call("bcast_update", "g", "o", b"payload")
            world.run()
            views = {
                c.core.views["g"].state.get("o").materialized() for c in clients
            }
            assert views == {b"payload"}
            states[mode] = [
                [d.record.seqno for _t, d in c.deliveries] for c in clients
            ]
        assert states[False] == states[True]

    def test_multicast_mode_is_faster_for_fanout(self):
        rtts = {}
        for mode in (False, True):
            world, clients = self._world(mode)
            start = world.now
            probe = clients[-1].call("bcast_update", "g", "o", b"x" * 1000)
            world.run()
            own = [t for t, d in clients[-1].deliveries]
            rtts[mode] = own[-1] - start
        assert rtts[True] < rtts[False]

    def test_multicast_sends_fewer_wire_bytes(self):
        traffic = {}
        for mode in (False, True):
            world, clients = self._world(mode)
            before = world.network.bytes_sent
            clients[0].call("bcast_update", "g", "o", b"y" * 2000)
            world.run()
            traffic[mode] = world.network.bytes_sent - before
        assert traffic[True] < traffic[False] / 3
