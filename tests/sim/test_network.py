"""Tests for the simulated network: delivery, contention, partitions."""

import pytest

from repro.sim.kernel import SimKernel
from repro.sim.network import SimNetwork


class Recorder:
    """Minimal HostAdapter that records everything it sees."""

    def __init__(self, network=None, auto_accept=True):
        self.connected = []
        self.failed = []
        self.messages = []
        self.closed = []

    def network_connected(self, channel, inbound, key):
        self.connected.append((channel, inbound, key))

    def network_connect_failed(self, peer, key):
        self.failed.append((peer, key))

    def network_message(self, channel, message, size):
        self.messages.append((message, size, channel))

    def network_closed(self, channel):
        self.closed.append(channel)


@pytest.fixture
def net():
    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment("lan", bytes_per_sec=1_000_000, latency=0.001)
    return kernel, network


def _host(network, name, segment="lan"):
    adapter = Recorder()
    network.attach(name, segment, adapter)
    return adapter


class TestConnect:
    def test_connect_notifies_both_ends(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b", key="dial-1")
        kernel.run()
        assert len(a.connected) == 1 and len(b.connected) == 1
        chan_a, inbound_a, key_a = a.connected[0]
        chan_b, inbound_b, _ = b.connected[0]
        assert chan_a is chan_b
        assert not inbound_a and key_a == "dial-1"
        assert inbound_b

    def test_connect_to_missing_host_fails(self, net):
        kernel, network = net
        a = _host(network, "a")
        network.connect("a", "ghost", key="k")
        kernel.run()
        assert a.failed == [("ghost", "k")]

    def test_connect_takes_time(self, net):
        kernel, network = net
        _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        assert kernel.run() >= 1
        assert kernel.now() > 0


class TestTransfer:
    def test_message_delivered_with_size(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        network.send(channel, "a", "hello", 500)
        kernel.run()
        assert b.messages == [("hello", 500, channel)]

    def test_fifo_order_preserved(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        for i in range(10):
            network.send(channel, "a", f"m{i}", 100)
        kernel.run()
        assert [m for m, _, _ in b.messages] == [f"m{i}" for i in range(10)]

    def test_bandwidth_serialization_delays_delivery(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        start = kernel.now()
        arrival = network.send(channel, "a", "big", 1_000_000)  # 1 s at 1 MB/s
        assert arrival - start == pytest.approx(1.0 + 0.001)

    def test_shared_medium_contention(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        c, d = _host(network, "c"), _host(network, "d")
        network.connect("a", "b")
        network.connect("c", "d")
        kernel.run()
        chan_ab = a.connected[0][0]
        chan_cd = c.connected[0][0]
        t0 = kernel.now()
        first = network.send(chan_ab, "a", "x", 100_000)   # 0.1 s on the wire
        second = network.send(chan_cd, "c", "y", 100_000)  # queues behind it
        assert first - t0 == pytest.approx(0.1 + 0.001)
        assert second - t0 == pytest.approx(0.2 + 0.001)

    def test_cross_segment_adds_hop_latency(self, net):
        kernel, network = net
        network.add_segment("lan2", bytes_per_sec=1_000_000, latency=0.001)
        network.set_hop_latency("lan", "lan2", 0.05)
        a = _host(network, "a", "lan")
        b = _host(network, "b", "lan2")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        t0 = kernel.now()
        arrival = network.send(channel, "a", "m", 1000)
        assert arrival - t0 == pytest.approx(0.001 + 0.001 + 0.001 + 0.05)

    def test_traffic_counters(self, net):
        kernel, network = net
        a, _b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        network.send(channel, "a", "m1", 300)
        network.send(channel, "a", "m2", 200)
        kernel.run()
        assert network.messages_sent == 2
        assert network.bytes_sent == 500


class TestFailures:
    def test_explicit_close_notifies_peer(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        network.close(channel, "a")
        kernel.run()
        assert b.closed == [channel]
        assert not channel.open

    def test_detach_closes_peer_channels(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        network.detach("b")
        kernel.run()
        assert len(a.closed) == 1

    def test_send_on_closed_channel_is_dropped(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        network.close(channel, "a")
        network.send(channel, "a", "late", 100)
        kernel.run()
        assert b.messages == []

    def test_partition_closes_crossing_channels(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        network.partition({"a"}, {"b"})
        kernel.run()
        assert len(a.closed) == 1 and len(b.closed) == 1

    def test_partition_blocks_new_connects_until_heal(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.partition({"a"}, {"b"})
        network.connect("a", "b", key="k1")
        kernel.run()
        assert a.failed == [("b", "k1")]
        network.heal()
        network.connect("a", "b", key="k2")
        kernel.run()
        assert len(a.connected) == 1 and len(b.connected) == 1

    def test_in_flight_message_dropped_by_partition(self, net):
        kernel, network = net
        a, b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        network.send(channel, "a", "doomed", 1_000_000)  # 1 s in flight
        network.partition({"a"}, {"b"})
        kernel.run()
        assert b.messages == []

    def test_reattach_after_detach(self, net):
        kernel, network = net
        a = _host(network, "a")
        _host(network, "b")
        network.detach("b")
        fresh = Recorder()
        network.reattach("b", "lan", fresh)
        network.connect("a", "b")
        kernel.run()
        assert len(fresh.connected) == 1
        assert len(a.connected) == 1

    def test_duplicate_attach_rejected(self, net):
        _kernel, network = net
        _host(network, "a")
        with pytest.raises(ValueError):
            network.attach("a", "lan", Recorder())

    def test_duplicate_segment_rejected(self, net):
        _kernel, network = net
        with pytest.raises(ValueError):
            network.add_segment("lan", 1.0, 1.0)


class TestVaryingRate:
    def test_set_rate_rejects_nonpositive(self):
        from repro.sim.network import Segment

        segment = Segment("s", 1000.0, 0.0)
        with pytest.raises(ValueError):
            segment.set_rate(0)
        with pytest.raises(ValueError):
            segment.set_rate(-5.0)

    def test_set_rate_keeps_committed_reservations(self):
        from repro.sim.network import Segment

        segment = Segment("s", 1000.0, 0.0)
        _start, finish = segment.reserve(0.0, 1000)  # 1 s at the old rate
        assert finish == pytest.approx(1.0)
        segment.set_rate(10_000.0)
        # the packet already on the wire keeps its schedule ...
        assert segment.busy_until == pytest.approx(1.0)
        # ... and only the next reservation sees the new rate
        start2, finish2 = segment.reserve(0.0, 1000)
        assert start2 == pytest.approx(1.0)
        assert finish2 == pytest.approx(1.1)

    def test_rate_step_speeds_up_later_messages(self, net):
        kernel, network = net
        a, _b = _host(network, "a"), _host(network, "b")
        network.connect("a", "b")
        kernel.run()
        channel = a.connected[0][0]
        t0 = kernel.now()
        slow = network.send(channel, "a", "m1", 100_000)  # 0.1 s at 1 MB/s
        assert slow - t0 == pytest.approx(0.1 + 0.001)
        kernel.run()
        network.segment("lan").set_rate(10_000_000.0)
        t1 = kernel.now()
        fast = network.send(channel, "a", "m2", 100_000)  # 0.01 s at 10 MB/s
        assert fast - t1 == pytest.approx(0.01 + 0.001)
