"""Tests for the CoronaWorld harness itself, plus simulation determinism."""

import pytest

from repro.sim.harness import CoronaWorld, PendingCall


class TestPendingCall:
    def test_value_before_reply_raises(self):
        call = PendingCall("join_group")
        assert not call.done and not call.ok
        assert call.error is None
        with pytest.raises(AssertionError):
            _ = call.value


class TestWorldBasics:
    def test_client_autonaming_and_connection(self):
        world = CoronaWorld()
        world.add_server()
        a = world.add_client()
        b = world.add_client()
        assert a.host_id != b.host_id
        world.run()
        assert a.core.connected and b.core.connected
        assert a.connected_at is not None

    def test_at_schedules_future_call(self):
        world = CoronaWorld()
        world.add_server()
        client = world.add_client(client_id="c")
        world.run()
        call = client.at(5.0, "create_group", "g")
        world.run_until(4.0)
        assert not call.done
        world.run()
        assert call.ok
        assert world.now >= 5.0

    def test_events_of_kind_filters(self):
        world = CoronaWorld()
        world.add_server()
        client = world.add_client(client_id="c")
        world.run()
        assert client.events_of_kind("connected") == ["server"]
        assert client.events_of_kind("nonexistent") == []

    def test_client_without_server_target(self):
        world = CoronaWorld()
        loner = world.add_client(server=None)
        world.run()
        assert not loner.core.connected


class TestDeterminism:
    def _trace(self):
        world = CoronaWorld()
        server = world.add_server()
        clients = [world.add_client(client_id=f"c{i}") for i in range(4)]
        world.run()
        clients[0].call("create_group", "g", True)
        world.run()
        for client in clients:
            client.call("join_group", "g")
        world.run()
        for i, client in enumerate(clients):
            for j in range(3):
                client.call("bcast_update", "g", "o", f"{i}/{j};".encode())
        world.run()
        return (
            world.now,
            world.kernel.processed,
            world.network.bytes_sent,
            server.stats.cpu_busy,
            [
                (t, d.record.seqno, d.record.data)
                for t, d in clients[0].deliveries
            ],
        )

    def test_identical_runs_produce_identical_traces(self):
        """The whole point of the simulator: runs are bit-reproducible."""
        assert self._trace() == self._trace()


class TestVaryingProfiles:
    def test_profile_rejects_nonpositive_base_rate(self):
        from repro.sim.profiles import VaryingNetProfile

        with pytest.raises(ValueError):
            VaryingNetProfile("bad", bytes_per_sec=0.0, latency=0.01)

    def test_profile_rejects_nonincreasing_step_times(self):
        from repro.sim.profiles import VaryingNetProfile

        with pytest.raises(ValueError):
            VaryingNetProfile(
                "bad", bytes_per_sec=1000.0, latency=0.01,
                steps=((5.0, 2000.0), (5.0, 3000.0)),
            )

    def test_profile_rejects_nonpositive_step_rate(self):
        from repro.sim.profiles import VaryingNetProfile

        with pytest.raises(ValueError):
            VaryingNetProfile(
                "bad", bytes_per_sec=1000.0, latency=0.01,
                steps=((5.0, -1.0),),
            )

    def test_add_segment_schedules_rate_steps(self):
        from repro.sim.profiles import VaryingNetProfile

        world = CoronaWorld()
        profile = VaryingNetProfile(
            "ramp", bytes_per_sec=1000.0, latency=0.01,
            steps=((10.0, 5000.0), (20.0, 9000.0)),
        )
        world.add_segment("wan", profile)
        segment = world.network.segment("wan")
        assert segment.bytes_per_sec == 1000.0
        world.run_until(10.5)
        assert segment.bytes_per_sec == 5000.0
        world.run_until(20.5)
        assert segment.bytes_per_sec == 9000.0

    def test_vary_rate_rebases_on_current_time(self):
        world = CoronaWorld()
        world.add_server()
        client = world.add_client(client_id="c")
        world.run()  # setup advances virtual time past zero
        origin = world.now
        world.vary_rate("lan", ((1.0, 250_000.0),))
        segment = world.network.segment("lan")
        world.run_until(origin + 0.5)
        assert segment.bytes_per_sec == 1_000_000.0
        world.run_until(origin + 1.5)
        assert segment.bytes_per_sec == 250_000.0
        # the slowed segment is live, not just a number: traffic still flows
        client.call("create_group", "g")
        world.run()
        assert client.core.connected
