"""Tests for the discrete-event kernel: ordering, cancellation, determinism."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.sim.kernel import SimKernel


class TestScheduling:
    def test_events_fire_in_time_order(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule(2.0, fired.append, "b")
        kernel.schedule(1.0, fired.append, "a")
        kernel.schedule(3.0, fired.append, "c")
        kernel.run()
        assert fired == ["a", "b", "c"]

    def test_ties_break_by_insertion_order(self):
        kernel = SimKernel()
        fired = []
        for tag in ("x", "y", "z"):
            kernel.schedule(1.0, fired.append, tag)
        kernel.run()
        assert fired == ["x", "y", "z"]

    def test_now_advances_to_event_time(self):
        kernel = SimKernel()
        seen = []
        kernel.schedule(5.0, lambda: seen.append(kernel.now()))
        kernel.run()
        assert seen == [5.0]
        assert kernel.now() == 5.0

    def test_negative_delay_rejected(self):
        with pytest.raises(ValueError):
            SimKernel().schedule(-1.0, lambda: None)

    def test_schedule_in_past_rejected(self):
        kernel = SimKernel()
        kernel.schedule(1.0, lambda: None)
        kernel.run()
        with pytest.raises(ValueError):
            kernel.schedule_at(0.5, lambda: None)

    def test_events_scheduled_during_run_execute(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule(1.0, lambda: kernel.schedule(1.0, fired.append, "nested"))
        kernel.run()
        assert fired == ["nested"]
        assert kernel.now() == 2.0


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        kernel = SimKernel()
        fired = []
        handle = kernel.schedule(1.0, fired.append, "no")
        handle.cancel()
        kernel.run()
        assert fired == []
        assert handle.cancelled

    def test_cancel_is_idempotent(self):
        kernel = SimKernel()
        handle = kernel.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert kernel.run() == 0

    def test_pending_excludes_cancelled(self):
        kernel = SimKernel()
        keep = kernel.schedule(1.0, lambda: None)
        kernel.schedule(2.0, lambda: None).cancel()
        assert kernel.pending == 1
        assert keep.time == 1.0


class TestRunBounds:
    def test_run_until_stops_at_boundary(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule(1.0, fired.append, "in")
        kernel.schedule(2.0, fired.append, "boundary")
        kernel.schedule(3.0, fired.append, "out")
        kernel.run_until(2.0)
        assert fired == ["in", "boundary"]
        assert kernel.now() == 2.0
        assert kernel.pending == 1

    def test_run_until_advances_clock_without_events(self):
        kernel = SimKernel()
        kernel.run_until(10.0)
        assert kernel.now() == 10.0

    def test_run_until_backwards_rejected(self):
        kernel = SimKernel()
        kernel.run_until(5.0)
        with pytest.raises(ValueError):
            kernel.run_until(1.0)

    def test_run_for(self):
        kernel = SimKernel()
        fired = []
        kernel.schedule(4.0, fired.append, "later")
        kernel.run_for(3.0)
        assert fired == []
        kernel.run_for(1.0)
        assert fired == ["later"]

    def test_run_max_events(self):
        kernel = SimKernel()
        for _ in range(5):
            kernel.schedule(1.0, lambda: None)
        assert kernel.run(max_events=3) == 3
        assert kernel.pending == 2
        assert kernel.processed == 3


@given(st.lists(st.floats(min_value=0, max_value=100), min_size=1, max_size=40))
def test_execution_is_sorted_and_deterministic(delays):
    def trace(run_delays):
        kernel = SimKernel()
        fired = []
        for i, d in enumerate(run_delays):
            kernel.schedule(d, fired.append, (d, i))
        kernel.run()
        return fired

    first, second = trace(delays), trace(delays)
    assert first == second
    assert [d for d, _ in first] == sorted(d for d in delays)
