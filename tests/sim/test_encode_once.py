"""Encode-once fan-out: a broadcast serializes its Delivery exactly once.

The codec's per-class encode counters record real (cache-missing) encodes;
driving a full simulated deployment at several group sizes proves the
number of serializations per broadcast is constant — the paper's "one
serialization, many receivers" property, with the frame cache standing in
for IP multicast on point-to-point connections.
"""

import pytest

from repro.sim.harness import CoronaWorld
from repro.wire import codec
from repro.wire.messages import Delivery


def _joined_world(members: int) -> tuple[CoronaWorld, list]:
    world = CoronaWorld()
    world.add_server()
    clients = [world.add_client(client_id=f"c{i}") for i in range(members)]
    world.run()
    clients[0].call("create_group", "g", True)
    world.run()
    for client in clients:
        client.call("join_group", "g")
    world.run()
    return world, clients


@pytest.mark.parametrize("members", [1, 8, 64])
def test_one_delivery_encode_per_broadcast(members):
    world, clients = _joined_world(members)
    before = codec.encode_counts().get(Delivery, 0)
    clients[0].call("bcast_update", "g", "o", b"payload-bytes")
    world.run()
    after = codec.encode_counts().get(Delivery, 0)

    # every member (INCLUSIVE mode) got the sequenced record...
    delivered = sum(len(c.deliveries) for c in clients)
    assert delivered == members
    # ...yet the Delivery message was serialized exactly once.
    assert after - before == 1


def test_encodes_stay_constant_as_group_grows():
    """The direct form of the acceptance criterion: serializations per
    broadcast do not scale with fan-out width."""
    per_size: dict[int, int] = {}
    for members in (1, 8, 64):
        world, clients = _joined_world(members)
        before = codec.encode_counts().get(Delivery, 0)
        clients[0].call("bcast_update", "g", "o", b"x" * 256)
        world.run()
        per_size[members] = codec.encode_counts().get(Delivery, 0) - before
    assert per_size == {1: 1, 8: 1, 64: 1}


def test_repeated_full_joins_encode_snapshot_once():
    """The join fast path: N late joiners taking a FULL transfer of an
    unchanged group cost one StateSnapshot serialization, not N."""
    from repro.wire.messages import StateSnapshot

    world = CoronaWorld()
    world.add_server()
    creator = world.add_client(client_id="creator")
    world.run()
    creator.call("create_group", "g", True)
    world.run()
    creator.call("join_group", "g")
    world.run()
    creator.call("bcast_state", "g", "doc", b"S" * 512)
    world.run()

    joiners = [world.add_client(client_id=f"late-{i}") for i in range(8)]
    world.run()
    before = codec.encode_counts().get(StateSnapshot, 0)
    joins = [client.call("join_group", "g") for client in joiners]
    world.run()
    assert all(j.ok for j in joins)
    delta = codec.encode_counts().get(StateSnapshot, 0) - before
    assert delta == 1, f"8 identical FULL joins performed {delta} encodes"


def test_join_snapshot_cache_invalidated_by_new_broadcast():
    world = CoronaWorld()
    world.add_server()
    creator = world.add_client(client_id="creator")
    world.run()
    creator.call("create_group", "g", True)
    world.run()
    creator.call("join_group", "g")
    world.run()
    creator.call("bcast_state", "g", "doc", b"v1")
    world.run()

    from repro.wire.messages import StateSnapshot

    first = world.add_client(client_id="late-1")
    world.run()
    first.call("join_group", "g")
    world.run()
    before = codec.encode_counts().get(StateSnapshot, 0)
    creator.call("bcast_update", "g", "doc", b"v2")  # history moved
    world.run()
    second = world.add_client(client_id="late-2")
    world.run()
    join = second.call("join_group", "g")
    world.run()
    assert join.ok
    # the moved history forces exactly one fresh snapshot encode
    assert codec.encode_counts().get(StateSnapshot, 0) - before == 1
