"""Tests for the simulated disk model."""

import pytest

from repro.sim.disk import DiskProfile, SimDisk
from repro.sim.kernel import SimKernel


@pytest.fixture
def kernel():
    return SimKernel()


class TestDiskProfile:
    def test_write_time(self):
        profile = DiskProfile(bytes_per_sec=1_000_000, op_latency=0.001)
        assert profile.write_time(0) == pytest.approx(0.001)
        assert profile.write_time(1_000_000) == pytest.approx(1.001)


class TestSimDisk:
    def test_idle_disk_starts_immediately(self, kernel):
        disk = SimDisk(kernel, DiskProfile(bytes_per_sec=1_000_000, op_latency=0.0))
        done = disk.write(500_000)
        assert done == pytest.approx(0.5)

    def test_writes_queue_fifo(self, kernel):
        disk = SimDisk(kernel, DiskProfile(bytes_per_sec=1_000_000, op_latency=0.0))
        first = disk.write(1_000_000)
        second = disk.write(1_000_000)
        assert first == pytest.approx(1.0)
        assert second == pytest.approx(2.0)
        assert disk.busy_until == pytest.approx(2.0)

    def test_earliest_defers_start(self, kernel):
        disk = SimDisk(kernel, DiskProfile(bytes_per_sec=1_000_000, op_latency=0.0))
        done = disk.write(100_000, earliest=5.0)
        assert done == pytest.approx(5.1)

    def test_counters(self, kernel):
        disk = SimDisk(kernel, DiskProfile())
        disk.write(100)
        disk.write(200)
        assert disk.ops == 2
        assert disk.bytes_written == 300

    def test_utilization_bounds(self, kernel):
        disk = SimDisk(kernel, DiskProfile(bytes_per_sec=1_000, op_latency=0.0))
        assert disk.utilization() == 0.0
        disk.write(10_000)  # 10 s of work at t=0
        kernel.run_until(5.0)
        util = disk.utilization()
        assert 0.0 < util <= 1.0
