"""Vector-clock happens-before checker: unit traces, the recorder and
its interpreter middleware, serialization, and the instrumented sharded
sim world (clean run + deliberately injected race)."""

from __future__ import annotations

from repro.analysis.racecheck import (
    RaceEvent,
    RaceRecorder,
    check_race_trace,
    events_from_jsonl,
    events_to_jsonl,
    inject_race,
    seeded_sharded_trace,
)


def ids(findings):
    return [f.rule_id for f in findings]


class TestCheckRaceTrace:
    def test_token_hop_orders_cross_lane_accesses(self):
        events = [
            RaceEvent("front", "write", "wal:g"),
            RaceEvent("front", "send", "mbox:shard0", token=1),
            RaceEvent("shard0", "recv", "mbox:shard0", token=1),
            RaceEvent("shard0", "write", "wal:g"),
        ]
        assert check_race_trace(events) == []

    def test_unordered_write_write_is_a_race(self):
        events = [
            RaceEvent("shard0", "write", "wal:g"),
            RaceEvent("shard1", "write", "wal:g"),
        ]
        findings = check_race_trace(events)
        assert ids(findings) == ["RACE001"]
        assert "wal:g" in findings[0].message

    def test_unordered_read_write_is_a_race(self):
        events = [
            RaceEvent("shard0", "read", "frame:1"),
            RaceEvent("shard1", "write", "frame:1"),
        ]
        assert ids(check_race_trace(events)) == ["RACE001"]

    def test_read_read_is_not_a_race(self):
        events = [
            RaceEvent("shard0", "read", "frame:1"),
            RaceEvent("shard1", "read", "frame:1"),
        ]
        assert check_race_trace(events) == []

    def test_same_lane_accesses_are_program_ordered(self):
        events = [
            RaceEvent("shard0", "write", "wal:g"),
            RaceEvent("shard0", "write", "wal:g"),
            RaceEvent("shard0", "read", "wal:g"),
        ]
        assert check_race_trace(events) == []

    def test_racy_hot_loop_reports_once_per_lane_pair(self):
        events = [
            RaceEvent("shard0", "write", "wal:g"),
            RaceEvent("shard1", "write", "wal:g"),
            RaceEvent("shard0", "write", "wal:g"),
            RaceEvent("shard1", "write", "wal:g"),
        ]
        assert len(check_race_trace(events)) == 1

    def test_transitive_ordering_through_relay(self):
        # shard0 -> front -> shard1: the relayed clock orders the ends
        events = [
            RaceEvent("shard0", "write", "wal:g"),
            RaceEvent("shard0", "send", "mbox:front", token=1),
            RaceEvent("front", "recv", "mbox:front", token=1),
            RaceEvent("front", "send", "mbox:shard1", token=2),
            RaceEvent("shard1", "recv", "mbox:shard1", token=2),
            RaceEvent("shard1", "write", "wal:g"),
        ]
        assert check_race_trace(events) == []


class TestRecorder:
    def test_send_tokens_are_unique_and_events_ordered(self):
        recorder = RaceRecorder()
        t1 = recorder.send("front", "mbox:shard0")
        t2 = recorder.send("front", "mbox:shard1")
        recorder.recv("shard0", "mbox:shard0", t1)
        assert t1 != t2
        kinds = [e.kind for e in recorder.events()]
        assert kinds == ["send", "send", "recv"]

    def test_middleware_records_wal_and_frame_traffic(self):
        class AppendWal:
            group = "g7"

        class SendMessage:
            def __init__(self, message):
                self.message = message

        class Msg:
            pass

        recorder = RaceRecorder()
        mw = recorder.middleware("front")
        passed = []
        msg = Msg()
        mw(AppendWal(), passed.append)
        mw(SendMessage(msg), passed.append)       # first encode: write
        msg._corona_wire_frame = b"cached"
        mw(SendMessage(msg), passed.append)       # cached frame: read
        events = recorder.events()
        assert [e.kind for e in events] == ["write", "write", "read"]
        assert events[0].obj == "wal:g7"
        assert events[1].obj == events[2].obj
        assert len(passed) == 3  # middleware always forwards

    def test_middleware_wire_false_skips_frame_events(self):
        class SendMessage:
            def __init__(self, message):
                self.message = message

        class AppendWal:
            group = "g1"

        recorder = RaceRecorder()
        mw = recorder.middleware("shard0", wire=False)
        mw(SendMessage(object()), lambda e: None)
        mw(AppendWal(), lambda e: None)
        assert [e.obj for e in recorder.events()] == ["wal:g1"]


class TestSerialization:
    def test_jsonl_roundtrip(self):
        events = [
            RaceEvent("front", "send", "mbox:shard0", token=3, loc="post"),
            RaceEvent("shard0", "recv", "mbox:shard0", token=3),
            RaceEvent("shard0", "write", "wal:g", loc="AppendWal"),
        ]
        assert events_from_jsonl(events_to_jsonl(events)) == events


class TestInjectRace:
    def test_injected_pair_is_always_caught(self):
        base = [
            RaceEvent("front", "send", "mbox:shard0", token=1),
            RaceEvent("shard0", "recv", "mbox:shard0", token=1),
            RaceEvent("shard0", "write", "wal:g"),
        ]
        assert check_race_trace(base) == []
        findings = check_race_trace(inject_race(base))
        assert any("injected:frame" in f.message for f in findings)

    def test_injection_on_empty_trace_uses_fallback_lanes(self):
        findings = check_race_trace(inject_race([]))
        assert any("injected:frame" in f.message for f in findings)


class TestSeededShardedTrace:
    def test_instrumented_sharded_world_is_race_free(self, tmp_path):
        events = seeded_sharded_trace(store_root=tmp_path, shards=3)
        lanes = {e.lane for e in events}
        assert "front" in lanes
        assert any(lane.startswith("shard") for lane in lanes)
        kinds = {e.kind for e in events}
        assert {"send", "recv", "write"} <= kinds
        assert check_race_trace(events) == []

    def test_injected_race_is_detected_in_real_trace(self):
        events = seeded_sharded_trace()
        findings = check_race_trace(inject_race(events))
        assert ids(findings) == ["RACE001"]
        assert "injected:frame" in findings[0].message


# --------------------------------------------------------------------------
# scheduler execution lanes (optimistic intra-group parallelism)
# --------------------------------------------------------------------------

def _scheduler_trace(exec_lanes=4, msgs=12):
    """An instrumented parallel-scheduler burst on the sharded sim."""
    from repro.core.server import ServerConfig
    from repro.sim.harness import CoronaWorld

    recorder = RaceRecorder()
    world = CoronaWorld()
    world.add_sharded_server(
        config=ServerConfig(server_id="server", exec_lanes=exec_lanes),
        shards=1,
        race_recorder=recorder,
    )
    alice = world.add_client(client_id="alice")
    bob = world.add_client(client_id="bob")
    world.run()
    for client in (alice, bob):
        call = client.call("create_group", "sched-g", False) if client is alice \
            else client.call("join_group", "sched-g")
        world.run()
        assert call.ok
    join = alice.call("join_group", "sched-g")
    world.run()
    assert join.ok
    start = world.now + 1.0
    for i in range(msgs):
        alice.at(start, "bcast_update", "sched-g", f"obj{i % 3}", bytes([i]))
    world.run()
    return recorder.events()


class TestSchedulerLanes:
    def test_parallel_run_is_race_free(self):
        events = _scheduler_trace()
        # the scheduler's execution lanes actually appear in the trace:
        # dispatch hops to shard0.exec<k> and frame fills recorded there
        exec_lanes = {e.lane for e in events if ".exec" in e.lane}
        assert exec_lanes, "no execution-lane events recorded"
        fills = [e for e in events
                 if ".exec" in e.lane and e.kind == "write"
                 and e.loc == "scheduler-exec"]
        assert fills, "no speculative frame fills recorded"
        assert check_race_trace(events) == []

    def test_join_edges_are_load_bearing(self):
        """Strip the dispatch/join hops around the execution lanes and
        the exact same access trace becomes a reported race — the
        happens-before edges are what order a lane's frame fill before
        the front's cached-frame fan-out reads."""
        events = _scheduler_trace()
        stripped = [
            e for e in events
            if not (e.kind in ("send", "recv")
                    and (".exec" in e.obj or ".exec" in e.lane))
        ]
        findings = check_race_trace(stripped)
        assert "RACE001" in ids(findings)

    def test_injected_race_found_in_parallel_trace(self):
        events = _scheduler_trace()
        assert ids(check_race_trace(inject_race(events))) == ["RACE001"]
