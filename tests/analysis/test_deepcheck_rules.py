"""Fire/silent pairs for every whole-program deepcheck rule, the
hypothesis property for lock-order cycle detection, baseline mechanics,
and the repo-level zero-new-findings gate."""

from __future__ import annotations

import json
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.deepcheck import (
    ALL_DEEP_RULES,
    baseline_payload,
    check_graph,
    deepcheck_paths,
    fingerprint,
    load_baseline,
    lock_order_cycles,
    split_baselined,
)
from repro.analysis.lint import load_config
from repro.analysis.program import ProgramGraph

# The worker/front scaffold the SHARD rules classify: Worker owns a
# threading.Thread (-> shard worker), Front holds a list of Workers.
SHARD_SCAFFOLD = """
import threading

class Core:
    def __init__(self):
        self.items = []

class Worker:
    def __init__(self):
        self.core = Core()
        self.count = 0
        self._thread = threading.Thread()
    def post(self, item): pass
    def start(self): pass
    def stop(self): pass
    def poke(self): pass
"""


def deep(rules=None, **modules) -> list:
    graph = ProgramGraph.from_sources({
        name.replace("__", "/") + ".py": source
        for name, source in modules.items()
    })
    return check_graph(graph, rules)


def rule_ids(findings) -> list[str]:
    return [f.rule_id for f in findings]


class TestShard001:
    def test_fires_on_front_reading_worker_core(self):
        findings = deep(
            rules=("SHARD001",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    workers: list[Worker]
    def snoop(self):
        return self.workers[0].core
""",
        )
        assert rule_ids(findings) == ["SHARD001"]
        assert "Worker.core" in findings[0].message

    def test_fires_on_cross_thread_method_call(self):
        findings = deep(
            rules=("SHARD001",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    workers: list[Worker]
    def jab(self):
        self.workers[0].poke()
""",
        )
        assert rule_ids(findings) == ["SHARD001"]
        assert "poke" in findings[0].message

    def test_silent_on_mailbox_and_lifecycle_surface(self):
        findings = deep(
            rules=("SHARD001",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    workers: list[Worker]
    def drive(self, item):
        self.workers[0].post(item)
        self.workers[0].start()
        self.workers[0].stop()
""",
        )
        assert findings == []

    def test_silent_on_immutable_attribute_read(self):
        findings = deep(
            rules=("SHARD001",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    workers: list[Worker]
    def peek(self):
        return self.workers[0].count
""",
        )
        assert findings == []

    def test_silent_inside_the_worker_itself(self):
        findings = deep(
            rules=("SHARD001",),
            repro__w=SHARD_SCAFFOLD + """
class Sub(Worker):
    def churn(self):
        return self.core.items
""",
        )
        assert findings == []


class TestShard002:
    def test_fires_on_posting_live_self_state(self):
        findings = deep(
            rules=("SHARD002",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    def __init__(self):
        self.pending = []
        self.worker = Worker()
    def flush(self):
        self.worker.post(self.pending)
""",
        )
        assert rule_ids(findings) == ["SHARD002"]
        assert "self.pending" in findings[0].message

    def test_fires_inside_tuple_literal(self):
        findings = deep(
            rules=("SHARD002",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    def __init__(self):
        self.pending = []
        self.worker = Worker()
    def flush(self):
        self.worker.post(("batch", self.pending))
""",
        )
        assert rule_ids(findings) == ["SHARD002"]

    def test_silent_on_copies_and_immutables(self):
        findings = deep(
            rules=("SHARD002",),
            repro__w=SHARD_SCAFFOLD,
            repro__front="""
from repro.w import Worker

class Front:
    def __init__(self):
        self.pending = []
        self.name = "front"
        self.worker = Worker()
    def flush(self):
        self.worker.post(tuple(self.pending))
        self.worker.post(self.name)
""",
        )
        assert findings == []


class TestShard003:
    FRONT_AND_WORKER = SHARD_SCAFFOLD + """
class Front:
    workers: list[Worker]
    def __init__(self):
        self.table = {}
    def call_front(self, fn): pass

class Hooked(Worker):
    def __init__(self, host: Front):
        self._host = host
"""

    def test_fires_on_direct_front_touch(self):
        findings = deep(
            rules=("SHARD003",),
            repro__w=self.FRONT_AND_WORKER + """
class Bad(Hooked):
    def leak(self):
        return self._host.table
""",
        )
        assert rule_ids(findings) == ["SHARD003"]
        assert "Front.table" in findings[0].message

    def test_silent_through_call_front_closure(self):
        findings = deep(
            rules=("SHARD003",),
            repro__w=self.FRONT_AND_WORKER + """
class Good(Hooked):
    def relay(self):
        self._host.call_front(lambda: self._host.table.clear())
""",
        )
        assert findings == []


class TestBlock001:
    def test_fires_on_sleep_in_coroutine(self):
        findings = deep(rules=("BLOCK001",), repro__m="""
import time

async def tick():
    time.sleep(1.0)
""")
        assert rule_ids(findings) == ["BLOCK001"]
        assert "time.sleep" in findings[0].message

    def test_silent_in_sync_function_and_async_sleep(self):
        findings = deep(rules=("BLOCK001",), repro__m="""
import asyncio
import time

def worker_thread():
    time.sleep(1.0)

async def tick():
    await asyncio.sleep(1.0)
""")
        assert findings == []


class TestBlock002:
    def test_fires_through_sync_call_chain(self):
        findings = deep(rules=("BLOCK002",), repro__m="""
import os

def sync_write(fd):
    os.fsync(fd)

async def handler(fd):
    sync_write(fd)
""")
        assert rule_ids(findings) == ["BLOCK002"]
        assert "handler" in findings[0].message

    def test_fires_through_interpreter_dispatch_bridge(self):
        findings = deep(
            rules=("BLOCK002",),
            repro__core__interpreter="""
class EffectInterpreter:
    def execute(self, effects): pass
""",
            repro__backend="""
import os
from repro.core.interpreter import EffectInterpreter

class Backend:
    def __init__(self):
        self.interpreter = EffectInterpreter()
    def append_wal(self, group, seqno, record):
        os.fsync(3)
    async def run(self, effects):
        self.interpreter.execute(effects)
""",
        )
        assert rule_ids(findings) == ["BLOCK002"]
        assert "append_wal" in findings[0].message

    def test_silent_when_only_sync_code_reaches_it(self):
        findings = deep(rules=("BLOCK002",), repro__m="""
import os

def sync_write(fd):
    os.fsync(fd)

def also_sync(fd):
    sync_write(fd)
""")
        assert findings == []

    def test_async_callee_is_not_traversed_from_entry(self):
        # the awaited coroutine is its own entry; reaching the blocking
        # site is reported once (for the inner entry), not twice
        findings = deep(rules=("BLOCK002",), repro__m="""
import os

def sync_write(fd):
    os.fsync(fd)

async def inner(fd):
    sync_write(fd)

async def outer(fd):
    await inner(fd)
""")
        assert rule_ids(findings) == ["BLOCK002"]
        assert "inner" in findings[0].message


class TestLock002:
    def test_fires_on_await_under_sync_lock(self):
        findings = deep(rules=("LOCK002",), repro__m="""
import asyncio
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
    async def bad(self):
        with self._lock:
            await asyncio.sleep(0)
""")
        assert rule_ids(findings) == ["LOCK002"]
        assert "self._lock" in findings[0].message

    def test_silent_when_await_is_outside_the_lock(self):
        findings = deep(rules=("LOCK002",), repro__m="""
import asyncio
import threading

class C:
    def __init__(self):
        self._lock = threading.Lock()
    async def good(self):
        with self._lock:
            x = 1
        await asyncio.sleep(x)
""")
        assert findings == []


class TestLock003:
    def test_fires_on_opposite_acquisition_orders(self):
        findings = deep(rules=("LOCK003",), repro__m="""
import threading

class C:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()
    def f(self):
        with self.a_lock:
            with self.b_lock:
                pass
    def g(self):
        with self.b_lock:
            with self.a_lock:
                pass
""")
        assert rule_ids(findings) == ["LOCK003"]
        assert "lock-order cycle" in findings[0].message

    def test_silent_on_consistent_order(self):
        findings = deep(rules=("LOCK003",), repro__m="""
import threading

class C:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()
    def f(self):
        with self.a_lock:
            with self.b_lock:
                pass
    def g(self):
        with self.a_lock:
            with self.b_lock:
                pass
""")
        assert findings == []

    def test_fires_across_one_call_level(self):
        findings = deep(rules=("LOCK003",), repro__m="""
import threading

class C:
    def __init__(self):
        self.a_lock = threading.Lock()
        self.b_lock = threading.Lock()
    def f(self):
        with self.a_lock:
            self.grab_b()
    def grab_b(self):
        with self.b_lock:
            pass
    def g(self):
        with self.b_lock:
            with self.a_lock:
                pass
""")
        assert rule_ids(findings) == ["LOCK003"]


def _has_cycle_reference(edges: list[tuple[str, str]]) -> bool:
    """Kahn topological sort: a graph is cyclic iff the sort is partial."""
    nodes = {n for e in edges for n in e}
    indeg = {n: 0 for n in nodes}
    adj: dict[str, set[str]] = {n: set() for n in nodes}
    for a, b in edges:
        if b not in adj[a]:
            adj[a].add(b)
            indeg[b] += 1
    queue = [n for n in nodes if indeg[n] == 0]
    seen = 0
    while queue:
        node = queue.pop()
        seen += 1
        for nxt in adj[node]:
            indeg[nxt] -= 1
            if indeg[nxt] == 0:
                queue.append(nxt)
    return seen != len(nodes)


class TestLockOrderCycles:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(
        st.tuples(st.sampled_from("ABCDE"), st.sampled_from("ABCDE")),
        max_size=20,
    ))
    def test_matches_topological_sort_and_returns_real_cycles(self, edges):
        edges = [(a, b) for a, b in edges if a != b]
        cycles = lock_order_cycles(edges)
        assert bool(cycles) == _has_cycle_reference(edges)
        edge_set = set(edges)
        for cycle in cycles:
            assert len(cycle) >= 2
            for pair in zip(cycle, cycle[1:] + cycle[:1]):
                assert pair in edge_set

    def test_self_loop_free_dag_is_clean(self):
        assert lock_order_cycles([("A", "B"), ("B", "C"), ("A", "C")]) == []

    def test_two_cycle_is_found(self):
        cycles = lock_order_cycles([("A", "B"), ("B", "A")])
        assert cycles and sorted(cycles[0]) == ["A", "B"]


class TestSuppressionAndScoping:
    def test_noqa_silences_single_rule(self):
        findings = deep(
            rules=("BLOCK001",),
            repro__m="""
import time

async def tick():
    time.sleep(1.0)  # noqa: BLOCK001 -- test fixture
""",
        )
        assert findings == []

    def test_corona_noqa_multi_rule_list(self):
        findings = deep(
            rules=("BLOCK001",),
            repro__m="""
import time

async def tick():
    time.sleep(1.0)  # corona: noqa(DET001, BLOCK001)
""",
        )
        assert findings == []

    def test_noqa_for_other_rule_does_not_silence(self):
        findings = deep(
            rules=("BLOCK001",),
            repro__m="""
import time

async def tick():
    time.sleep(1.0)  # noqa: DET001
""",
        )
        assert rule_ids(findings) == ["BLOCK001"]

    def test_per_rule_exclude_by_module_prefix(self):
        graph = ProgramGraph.from_sources({"repro/m.py": """
import time

async def tick():
    time.sleep(1.0)
"""})
        hit = check_graph(graph, ("BLOCK001",))
        assert rule_ids(hit) == ["BLOCK001"]
        silenced = check_graph(
            graph, ("BLOCK001",), {"BLOCK001": ("repro.m",)}
        )
        assert silenced == []


class TestBaseline:
    def test_split_baselined_new_known_stale(self):
        graph = ProgramGraph.from_sources({"repro/m.py": """
import time

async def tick():
    time.sleep(1.0)
"""})
        findings = check_graph(graph, ("BLOCK001",))
        assert len(findings) == 1
        baseline = baseline_payload(findings, [])["findings"]
        assert baseline[0]["justification"] == "TODO: justify or fix"
        new, stale = split_baselined(findings, baseline)
        assert new == [] and stale == []
        ghost = dict(baseline[0], message="gone finding")
        new, stale = split_baselined(findings, [ghost])
        assert len(new) == 1 and len(stale) == 1

    def test_payload_carries_existing_justifications(self):
        graph = ProgramGraph.from_sources({"repro/m.py": """
import time

async def tick():
    time.sleep(1.0)
"""})
        findings = check_graph(graph, ("BLOCK001",))
        old = baseline_payload(findings, [])["findings"]
        old[0]["justification"] = "deliberate: fixture"
        again = baseline_payload(findings, old)["findings"]
        assert again[0]["justification"] == "deliberate: fixture"

    def test_fingerprint_ignores_line_numbers(self):
        graph = ProgramGraph.from_sources({"repro/m.py": """
import time

async def tick():
    time.sleep(1.0)
"""})
        f = check_graph(graph, ("BLOCK001",))[0]
        shifted = ProgramGraph.from_sources({"repro/m.py": """
import time

# an unrelated comment pushing everything down


async def tick():
    time.sleep(1.0)
"""})
        g = check_graph(shifted, ("BLOCK001",))[0]
        assert f.line != g.line
        assert fingerprint(f) == fingerprint(g)


class TestRepoIsClean:
    def test_shipped_tree_has_no_unbaselined_findings(self):
        root = Path(__file__).resolve().parents[2]
        config = load_config(root / "pyproject.toml")
        _graph, findings = deepcheck_paths(
            root / "src", config.deepcheck_rules, config.per_rule_exclude
        )
        baseline = load_baseline(root / config.deepcheck_baseline)
        new, stale = split_baselined(findings, baseline)
        assert new == [], "\n".join(f.render() for f in new)
        assert stale == [], f"stale baseline entries: {stale}"

    def test_every_baseline_entry_is_justified(self):
        root = Path(__file__).resolve().parents[2]
        config = load_config(root / "pyproject.toml")
        baseline = load_baseline(root / config.deepcheck_baseline)
        assert baseline, "committed baseline should not be empty"
        for entry in baseline:
            justification = entry.get("justification", "")
            assert justification and "TODO" not in justification, entry

    def test_configured_deepcheck_rules_cover_all_families(self):
        root = Path(__file__).resolve().parents[2]
        config = load_config(root / "pyproject.toml")
        assert set(config.deepcheck_rules) == set(ALL_DEEP_RULES)
        assert config.deepcheck_baseline == "deepcheck-baseline.json"


# The SharedState scaffold SCHED001 classifies: the real qualnames of
# the state classes, a scheduler module, and the serial commit points.
SCHED_SCAFFOLD = """
class SharedObject:
    def apply(self, record): pass
    def truncate(self, upto): pass

class SharedState:
    def apply(self, record): pass
    def fold(self, upto): pass
    def version(self, object_id): return None
    def get(self, object_id) -> SharedObject: return SharedObject()
"""


class TestSched001:
    def test_fires_on_mutation_outside_commit_path(self):
        findings = deep(
            rules=("SCHED001",),
            repro__core__state=SCHED_SCAFFOLD,
            repro__replication__healer="""
from repro.core.state import SharedState

def heal(state: SharedState, record):
    state.apply(record)
""",
        )
        assert rule_ids(findings) == ["SCHED001"]
        assert "SharedState.apply" in findings[0].message

    def test_fires_on_shared_object_truncate_via_get(self):
        findings = deep(
            rules=("SCHED001",),
            repro__core__state=SCHED_SCAFFOLD,
            repro__replication__healer="""
from repro.core.state import SharedState

def rollback(state: SharedState, object_id, seqno):
    state.get(object_id).truncate(seqno)
""",
        )
        assert rule_ids(findings) == ["SCHED001"]
        assert "SharedObject.truncate" in findings[0].message

    def test_silent_in_scheduler_module_and_commit_points(self):
        findings = deep(
            rules=("SCHED001",),
            repro__core__state=SCHED_SCAFFOLD,
            repro__core__scheduler="""
from repro.core.state import SharedState

def commit(state: SharedState, record):
    state.apply(record)
""",
            repro__core__group_runtime="""
from repro.core.state import SharedState

class GroupRuntime:
    state: SharedState
    def apply_and_deliver(self, record):
        self.state.apply(record)
    def reduce(self, upto):
        self.state.fold(upto)
""",
        )
        assert findings == []

    def test_silent_on_reads_and_unrelated_apply(self):
        findings = deep(
            rules=("SCHED001",),
            repro__core__state=SCHED_SCAFFOLD,
            repro__other="""
from repro.core.state import SharedState

class Patch:
    def apply(self, record): pass

def observe(state: SharedState, patch: Patch, record):
    version = state.version("doc")
    patch.apply(record)
    return version
""",
        )
        assert findings == []
