"""The elastic-topology doc-drift gate (tools/check_topology_docs.py).

CI runs the script directly; this wrapper keeps the gate inside the
normal test suite too, and pins the property that makes it useful: the
required-name list is *derived* from the code's exports, so a new
control-loop knob, migration outcome, or fencing surface cannot ship
without documentation.
"""

import importlib.util
from dataclasses import fields
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_topology_docs", REPO_ROOT / "tools" / "check_topology_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_topology_doc_covers_every_exported_name(capsys):
    checker = _load_checker()
    assert checker.main() == 0
    assert "covers all" in capsys.readouterr().out


def test_required_names_track_the_code_exports():
    from repro.core.errors import StaleEpochError
    from repro.runtime.migration import OUTCOMES
    from repro.runtime.topology import TopologyConfig

    names = _load_checker().required_names()
    for f in fields(TopologyConfig):
        assert f.name in names
    for outcome in OUTCOMES:
        assert outcome in names
    assert StaleEpochError.code in names
    assert "SHARD004" in names
    assert "strip_migration_edges" in names
    # knobs + outcomes + 2 phases + code + counter + rule + helper
    assert len(names) == len(fields(TopologyConfig)) + len(OUTCOMES) + 6


def test_gate_fails_when_a_name_goes_missing(monkeypatch, tmp_path, capsys):
    checker = _load_checker()
    doc = REPO_ROOT / "docs" / "architecture.md"
    stripped = tmp_path / "architecture.md"
    stripped.write_text(
        doc.read_text().replace("hot_queue_depth", "hot_depth")
    )
    monkeypatch.setattr(checker, "DOC", stripped)
    assert checker.main() == 1
    assert "hot_queue_depth" in capsys.readouterr().err


def test_gate_fails_when_the_doc_is_gone(monkeypatch, tmp_path, capsys):
    checker = _load_checker()
    monkeypatch.setattr(checker, "DOC", tmp_path / "nope.md")
    assert checker.main() == 1
    assert "does not exist" in capsys.readouterr().err
