"""Tests for the whole-program model behind ``repro deepcheck``."""

from __future__ import annotations

from pathlib import Path

from repro.analysis.program import ProgramGraph, TypeRef


def graph_of(**modules: str) -> ProgramGraph:
    """Build a graph from ``pkg_mod="source"`` keyword sources."""
    return ProgramGraph.from_sources({
        name.replace("__", "/") + ".py": source
        for name, source in modules.items()
    })


class TestModuleModel:
    def test_module_names_follow_package_layout(self):
        graph = graph_of(
            repro__core__a="x = 1",
            repro__runtime__b="y = 2",
        )
        assert set(graph.modules) == {"repro.core.a", "repro.runtime.b"}

    def test_functions_and_classes_register_qualnames(self):
        graph = graph_of(repro__m="""
class C:
    def method(self): pass

def helper(): pass

async def amain(): pass
""")
        assert "repro.m.C" in graph.classes
        assert "repro.m.C.method" in graph.functions
        assert "repro.m.helper" in graph.functions
        assert graph.functions["repro.m.amain"].is_async
        assert not graph.functions["repro.m.helper"].is_async

    def test_syntax_error_module_is_skipped(self):
        graph = graph_of(repro__bad="def broken(:", repro__ok="x = 1")
        assert set(graph.modules) == {"repro.ok"}


class TestAttributeOwnership:
    def test_annotated_class_attribute(self):
        graph = graph_of(repro__m="""
class C:
    count: int
""")
        assert graph.class_attr_type("repro.m.C", "count") == TypeRef("builtins.int")

    def test_self_assignment_in_init_infers_constructor_type(self):
        graph = graph_of(repro__m="""
class Inner: pass

class Outer:
    def __init__(self):
        self.inner = Inner()
        self.items = []
""")
        assert graph.class_attr_type("repro.m.Outer", "inner") == TypeRef(
            "repro.m.Inner"
        )
        assert graph.class_attr_type("repro.m.Outer", "items") == TypeRef("builtins.list")

    def test_attr_type_from_cross_module_return_annotation(self):
        graph = graph_of(
            repro__a="""
class Engine: pass

def build_engine() -> Engine:
    return Engine()
""",
            repro__b="""
from repro.a import build_engine

class Holder:
    def __init__(self):
        self.engine = build_engine()
""",
        )
        assert graph.class_attr_type("repro.b.Holder", "engine") == TypeRef(
            "repro.a.Engine"
        )

    def test_attr_inherited_through_mro(self):
        graph = graph_of(repro__m="""
import threading

class Base:
    def _init(self):
        self.thread = threading.Thread()

class Child(Base):
    pass
""")
        assert graph.class_attr_type("repro.m.Child", "thread") == TypeRef(
            "threading.Thread"
        )

    def test_optional_and_union_annotations_resolve_to_payload(self):
        graph = graph_of(repro__m="""
class S: pass

class C:
    a: S | None
    b: list[S]
""")
        assert graph.class_attr_type("repro.m.C", "a") == TypeRef("repro.m.S")
        b = graph.class_attr_type("repro.m.C", "b")
        assert b.base == "builtins.list" and b.elem == "repro.m.S"


class TestCallResolution:
    def test_method_call_through_typed_attribute(self):
        graph = graph_of(repro__m="""
class Store:
    def flush(self): pass

class Host:
    def __init__(self):
        self.store = Store()
    def run(self):
        self.store.flush()
""")
        callees = {
            s.callee for s in graph.calls.get("repro.m.Host.run", [])
        }
        assert "repro.m.Store.flush" in callees

    def test_cross_module_function_call(self):
        graph = graph_of(
            repro__util="def helper(): pass",
            repro__use="""
from repro.util import helper

def caller():
    helper()
""",
        )
        callees = {
            s.callee for s in graph.calls.get("repro.use.caller", [])
        }
        assert "repro.util.helper" in callees

    def test_external_calls_marked_out_of_program(self):
        graph = graph_of(repro__m="""
import os

def f():
    os.fsync(3)
""")
        sites = graph.calls.get("repro.m.f", [])
        assert sites and not any(s.in_program for s in sites if "fsync" in s.callee)

    def test_comprehension_target_is_typed_from_container_elem(self):
        graph = graph_of(repro__m="""
class W:
    def __init__(self):
        self.n = 0
    def poke(self): pass

class Front:
    workers: list[W]
    def touch_all(self):
        return [w.poke() for w in self.workers]
""")
        callees = {
            s.callee for s in graph.calls.get("repro.m.Front.touch_all", [])
        }
        assert "repro.m.W.poke" in callees


class TestSubclassesAndMro:
    def test_subclasses_and_mro(self):
        graph = graph_of(repro__m="""
class A: pass
class B(A): pass
class C(B): pass
""")
        assert graph.mro("repro.m.C")[:3] == [
            "repro.m.C", "repro.m.B", "repro.m.A"
        ]
        assert set(graph.subclasses("repro.m.A")) >= {"repro.m.B", "repro.m.C"}

    def test_forward_reference_annotation(self):
        graph = graph_of(repro__m="""
class Later: pass

class C:
    ref: "Later"
""")
        assert graph.class_attr_type("repro.m.C", "ref") == TypeRef("repro.m.Later")


class TestRepoGraph:
    def test_loads_whole_repro_package(self):
        graph = ProgramGraph.load(Path("src"))
        assert "repro.runtime.shard.ShardedHost" in graph.classes
        assert "repro.core.interpreter.EffectInterpreter" in graph.classes
        # worker typing that the SHARD rules depend on
        assert graph.class_attr_type(
            "repro.runtime.shard._ShardWorker", "_thread"
        ) == TypeRef("threading.Thread")
        workers = graph.class_attr_type("repro.runtime.shard.ShardedHost", "workers")
        assert workers is not None and workers.base == "builtins.list"
        assert workers.elem == "repro.runtime.shard._ShardWorker"
