"""tracecheck: the seeded sim trace satisfies the §4.1 ordering contract,
and artificially corrupted traces are flagged with the right invariant."""

from types import SimpleNamespace

from repro.analysis.tracecheck import (
    TraceEvent,
    check_trace,
    check_world,
    seeded_sim_trace,
    trace_from_jsonl,
    trace_to_jsonl,
)
from repro.cli import lint_main, tracecheck_main


def deliver(process, seqno, sender, *, group="g0", obj="o", payload=b"", t=0.0):
    return TraceEvent(
        kind="deliver", time=t, process=process, group=group,
        sender=sender, seqno=seqno, object_id=obj, payload=payload,
    )


def send(process, obj, payload, *, group="g0", t=0.0):
    return TraceEvent(
        kind="send", time=t, process=process, group=group,
        sender=process, object_id=obj, payload=payload,
    )


# --------------------------------------------------------------------------
# the seeded workload (what `repro tracecheck` runs)
# --------------------------------------------------------------------------

class TestSeededTrace:
    def test_seeded_trace_is_clean(self):
        events = seeded_sim_trace()
        assert events, "seeded workload produced no trace"
        deliveries = [e for e in events if e.kind == "deliver"]
        checkpoints = [e for e in events if e.kind == "checkpoint"]
        assert len(deliveries) >= 60  # 30 updates fanned out to 3 clients
        assert checkpoints, "reduce_log never checkpointed"
        assert check_trace(events) == []

    def test_seeded_trace_is_deterministic(self):
        first = seeded_sim_trace(n_clients=2, n_updates=10, n_groups=1)
        second = seeded_sim_trace(n_clients=2, n_updates=10, n_groups=1)
        assert first == second
        assert trace_to_jsonl(first) == trace_to_jsonl(second)

    def test_reordered_trace_is_flagged(self):
        """Acceptance criterion: swap two same-group deliveries at one
        receiver and tracecheck must report a total-order violation."""
        events = seeded_sim_trace()
        receiver = "c1"
        idx = [
            i for i, e in enumerate(events)
            if e.kind == "deliver" and e.process == receiver and e.group == "g0"
        ]
        assert len(idx) >= 2
        events[idx[0]], events[idx[1]] = events[idx[1]], events[idx[0]]
        findings = check_trace(events)
        assert any(f.rule_id == "ORD001" for f in findings)
        assert any(receiver in f.message for f in findings)


# --------------------------------------------------------------------------
# synthetic traces, one invariant at a time
# --------------------------------------------------------------------------

class TestSyntheticTraces:
    def causal_pair(self, c1_sees_dependency_first):
        """c2 multicasts A; c0 delivers A and then multicasts B (so A is a
        causal dependency of B); c1 delivers both, in either order."""
        at_c1 = [deliver("c1", 0, "c2", obj="a", payload=b"A"),
                 deliver("c1", 1, "c0", obj="b", payload=b"B")]
        if not c1_sees_dependency_first:
            at_c1.reverse()
        return [
            send("c2", "a", b"A"),
            deliver("c0", 0, "c2", obj="a", payload=b"A"),
            deliver("c2", 0, "c2", obj="a", payload=b"A"),
            send("c0", "b", b"B"),
            deliver("c0", 1, "c0", obj="b", payload=b"B"),
            deliver("c2", 1, "c0", obj="b", payload=b"B"),
            *at_c1,
        ]

    def test_causal_delivery_passes(self):
        assert check_trace(self.causal_pair(c1_sees_dependency_first=True)) == []

    def test_causality_violation_fires_ord002(self):
        findings = check_trace(self.causal_pair(c1_sees_dependency_first=False))
        ord002 = [f for f in findings if f.rule_id == "ORD002"]
        assert ord002 and "causal dependency 0" in ord002[0].message

    def test_sender_fifo_violation_fires_ord003(self):
        events = [
            deliver("c1", 0, "c0", obj="x"),
            deliver("c1", 2, "c0", obj="z"),
            deliver("c1", 1, "c0", obj="y"),  # c0's seqno 1 after its 2
        ]
        findings = check_trace(events)
        assert any(f.rule_id == "ORD003" for f in findings)

    def test_seqno_identity_fork_fires_ord001(self):
        events = [
            deliver("c0", 0, "c1", obj="x", payload=b"1"),
            deliver("c2", 0, "c3", obj="y", payload=b"2"),  # same seqno, other msg
        ]
        findings = check_trace(events)
        assert any(
            f.rule_id == "ORD001" and "two different messages" in f.message
            for f in findings
        )

    def test_checkpoint_rewind_fires_ord004(self):
        events = [
            TraceEvent(kind="checkpoint", time=1.0, process="server",
                       group="g0", seqno=10),
            TraceEvent(kind="checkpoint", time=2.0, process="server",
                       group="g0", seqno=5),
        ]
        findings = check_trace(events)
        assert [f.rule_id for f in findings] == ["ORD004"]
        assert "after an earlier fold at 10" in findings[0].message

    def test_reset_starts_a_fresh_epoch(self):
        """A rebase/fork/rejoin legitimately restarts seqnos: no findings."""
        events = [
            deliver("c1", 0, "c0", obj="x"),
            deliver("c1", 1, "c0", obj="y"),
            TraceEvent(kind="reset", time=1.0, process="c1", group="g0"),
            deliver("c1", 0, "c0", obj="x2"),
            deliver("c1", 1, "c0", obj="y2"),
        ]
        assert check_trace(events) == []

    def test_seqno_regression_without_reset_fires(self):
        events = [
            deliver("c1", 0, "c0", obj="x"),
            deliver("c1", 1, "c0", obj="y"),
            deliver("c1", 0, "c0", obj="x2"),
        ]
        assert any(f.rule_id == "ORD001" for f in check_trace(events))

    def test_finding_line_is_the_event_index(self):
        events = [
            TraceEvent(kind="checkpoint", time=1.0, process="s", group="g", seqno=9),
            TraceEvent(kind="checkpoint", time=2.0, process="s", group="g", seqno=3),
        ]
        (finding,) = check_trace(events)
        assert finding.line == 2  # 1-based index of the offending event


# --------------------------------------------------------------------------
# check_world glue + serialization + CLI
# --------------------------------------------------------------------------

class TestCheckWorld:
    BAD = [
        TraceEvent(kind="checkpoint", time=1.0, process="s", group="g", seqno=9),
        TraceEvent(kind="checkpoint", time=2.0, process="s", group="g", seqno=3),
    ]

    def test_untraced_world_is_skipped(self):
        world = SimpleNamespace(trace=None, network=SimpleNamespace())
        assert check_world(world) == []

    def test_partitioned_world_is_exempt(self):
        world = SimpleNamespace(
            trace=list(self.BAD),
            network=SimpleNamespace(ever_partitioned=True),
        )
        assert check_world(world) == []

    def test_healthy_world_is_checked(self):
        world = SimpleNamespace(
            trace=list(self.BAD),
            network=SimpleNamespace(ever_partitioned=False),
        )
        assert [f.rule_id for f in check_world(world)] == ["ORD004"]


def test_jsonl_round_trip():
    events = seeded_sim_trace(n_clients=2, n_updates=6, n_groups=1)
    text = trace_to_jsonl(events)
    assert trace_from_jsonl(text) == events
    assert trace_to_jsonl([]) == ""
    assert trace_from_jsonl("") == []


class TestCli:
    def test_tracecheck_clean_run_exits_zero(self, capsys):
        assert tracecheck_main(["--clients", "2", "--updates", "6"]) == 0
        assert "0 violation(s)" in capsys.readouterr().out

    def test_tracecheck_flags_corrupt_dump(self, tmp_path, capsys):
        events = seeded_sim_trace(n_clients=2, n_updates=6, n_groups=1)
        idx = [
            i for i, e in enumerate(events)
            if e.kind == "deliver" and e.process == "c1" and e.group == "g0"
        ]
        events[idx[0]], events[idx[1]] = events[idx[1]], events[idx[0]]
        bad = tmp_path / "bad.jsonl"
        bad.write_text(trace_to_jsonl(events))
        assert tracecheck_main(["--check", str(bad)]) == 1
        assert "ORD001" in capsys.readouterr().out

    def test_tracecheck_dump_round_trips(self, tmp_path, capsys):
        dump = tmp_path / "trace.jsonl"
        assert tracecheck_main(
            ["--clients", "2", "--updates", "6", "--dump", str(dump)]
        ) == 0
        capsys.readouterr()
        assert tracecheck_main(["--check", str(dump)]) == 0

    def test_lint_cli_strict_on_shipped_tree(self, capsys):
        assert lint_main(["src", "--strict"]) == 0
        assert "0 error(s)" in capsys.readouterr().out

    def test_lint_cli_flags_bad_file(self, tmp_path, capsys):
        bad = tmp_path / "src" / "repro" / "core" / "evil.py"
        bad.parent.mkdir(parents=True)
        bad.write_text("import time\nx = time.time()\n")
        assert lint_main([str(tmp_path / "src"), "--no-config"]) == 1
        assert "DET001" in capsys.readouterr().out
