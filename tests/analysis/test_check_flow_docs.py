"""The flow-control doc-drift gate (tools/check_flow_docs.py) as a test.

CI runs the script directly; this wrapper keeps the gate inside the
normal test suite too, and pins the property that makes it useful: the
required-name list is *derived* from the code's exports, so a new knob,
lane, or disconnect reason cannot ship without documentation.
"""

import importlib.util
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_flow_docs", REPO_ROOT / "tools" / "check_flow_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_flow_control_doc_covers_every_exported_name(capsys):
    checker = _load_checker()
    assert checker.main() == 0
    assert "covers all" in capsys.readouterr().out


def test_required_names_track_the_code_exports():
    from repro.net.flowcontrol import Lane, policy_knobs
    from repro.wire.messages import DisconnectReason

    names = _load_checker().required_names()
    for knob in policy_knobs():
        assert knob in names
    for lane in Lane:
        assert lane.name in names
    for reason in DisconnectReason:
        assert reason.name in names
    # today that is 4 knobs + 2 lanes + 3 reasons
    assert len(names) == len(policy_knobs()) + len(Lane) + len(DisconnectReason)


def test_gate_fails_when_a_name_goes_missing(monkeypatch, tmp_path, capsys):
    checker = _load_checker()
    doc = REPO_ROOT / "docs" / "flow-control.md"
    stripped = tmp_path / "flow-control.md"
    stripped.write_text(doc.read_text().replace("coalesce_watermark", "watermark"))
    monkeypatch.setattr(checker, "DOC", stripped)
    assert checker.main() == 1
    assert "coalesce_watermark" in capsys.readouterr().err


def test_gate_fails_when_the_doc_is_gone(monkeypatch, tmp_path, capsys):
    checker = _load_checker()
    monkeypatch.setattr(checker, "DOC", tmp_path / "nope.md")
    assert checker.main() == 1
    assert "does not exist" in capsys.readouterr().err
