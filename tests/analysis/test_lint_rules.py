"""Each coronalint rule: fires on a minimal bad example, stays silent on
the corresponding good example (acceptance criterion of the analysis PR)."""

from repro.analysis.lint import LintConfig, lint_source

#: A path inside the deterministic protocol zone (every rule applies).
CORE = "src/repro/core/somemodule.py"


def rule_ids(source: str, path: str = CORE, config: LintConfig | None = None):
    return [f.rule_id for f in lint_source(source, path, config)]


class TestDET001WallClock:
    def test_fires_on_time_time(self):
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        assert "DET001" in rule_ids(src)

    def test_fires_on_datetime_now(self):
        src = (
            "from datetime import datetime\n\n"
            "def stamp():\n    return datetime.now()\n"
        )
        assert "DET001" in rule_ids(src)

    def test_fires_on_from_import_alias(self):
        src = "from time import monotonic as mono\n\nx = mono()\n"
        assert "DET001" in rule_ids(src)

    def test_silent_on_injected_clock(self):
        src = (
            "def stamp(clock):\n"
            "    return clock.now()\n"
        )
        assert rule_ids(src) == []

    def test_silent_outside_protocol_scope(self):
        src = "import time\n\ndef stamp():\n    return time.time()\n"
        assert "DET001" not in rule_ids(src, path="src/repro/runtime/host.py")


class TestDET002Randomness:
    def test_fires_on_module_level_random(self):
        src = "import random\n\nx = random.random()\n"
        assert "DET002" in rule_ids(src)

    def test_fires_on_uuid4_and_urandom(self):
        src = "import os\nimport uuid\n\na = uuid.uuid4()\nb = os.urandom(8)\n"
        assert rule_ids(src).count("DET002") == 2

    def test_silent_on_seeded_instance(self):
        src = (
            "import random\n\n"
            "rng = random.Random(42)\n"
            "x = rng.random()\n"
        )
        assert rule_ids(src) == []

    def test_silent_in_ids_module(self):
        src = "import uuid\n\nx = uuid.uuid4()\n"
        assert "DET002" not in rule_ids(src, path="src/repro/core/ids.py")


class TestDET003SetIteration:
    def test_fires_on_for_over_set(self):
        src = "items = {1, 2, 3}\nfor item in items:\n    print(item)\n"
        assert "DET003" in rule_ids(src)

    def test_fires_on_dict_comp_over_set_typed_attr(self):
        src = (
            "class Node:\n"
            "    def __init__(self):\n"
            "        self._peers: set[str] = set()\n"
            "    def fanout(self):\n"
            "        return [p for p in self._peers]\n"
        )
        assert "DET003" in rule_ids(src)

    def test_fires_on_set_union(self):
        src = (
            "def merge(a, b):\n"
            "    keys = set(a) | set(b)\n"
            "    return {k: 1 for k in keys}\n"
        )
        assert "DET003" in rule_ids(src)

    def test_silent_on_sorted_iteration(self):
        src = "items = {1, 2, 3}\nfor item in sorted(items):\n    print(item)\n"
        assert rule_ids(src) == []

    def test_silent_on_order_free_reducers(self):
        src = (
            "def merge(a, b):\n"
            "    keys = set(a) | set(b)\n"
            "    return all(k > 0 for k in keys) and sum(k for k in keys)\n"
        )
        assert rule_ids(src) == []

    def test_silent_on_membership(self):
        src = "items = {1, 2, 3}\nok = 2 in items\n"
        assert rule_ids(src) == []


class TestNET001BlockingIO:
    def test_fires_on_open(self):
        src = "def load(path):\n    return open(path).read()\n"
        assert "NET001" in rule_ids(src)

    def test_fires_on_socket(self):
        src = (
            "import socket\n\n"
            "def dial(host):\n"
            "    return socket.create_connection((host, 7700))\n"
        )
        assert "NET001" in rule_ids(src)

    def test_silent_in_storage_and_net(self):
        src = "def load(path):\n    return open(path).read()\n"
        assert "NET001" not in rule_ids(src, path="src/repro/storage/wal.py")
        assert "NET001" not in rule_ids(src, path="src/repro/net/tcp.py")


class TestLOCK001GuardedMutation:
    def test_fires_on_increments_assignment(self):
        src = "def rollback(obj):\n    obj.increments = []\n"
        assert "LOCK001" in rule_ids(src)

    def test_fires_on_mutating_call(self):
        src = "def sneak(obj, x):\n    obj.increments.append(x)\n"
        assert "LOCK001" in rule_ids(src)

    def test_fires_on_lock_holder_assignment(self):
        src = "def steal(lock, me):\n    lock.holder = me\n"
        assert "LOCK001" in rule_ids(src)

    def test_silent_on_reads_and_methods(self):
        src = (
            "def peek(obj):\n"
            "    size = len(obj.increments)\n"
            "    obj.truncate(3)\n"
            "    return size, obj.base_seqno\n"
        )
        assert rule_ids(src) == []

    def test_silent_in_owning_modules(self):
        src = "def grant(lock, who):\n    lock.holder = who\n"
        assert "LOCK001" not in rule_ids(src, path="src/repro/core/locks.py")


class TestPERF001FanoutEncode:
    #: A module on the fan-out path (PERF001 is include-scoped to these).
    FANOUT = "src/repro/core/server.py"

    def test_fires_on_direct_encode_in_server(self):
        src = (
            "from repro.wire import codec\n\n"
            "def deliver(conns, msg):\n"
            "    for conn in conns:\n"
            "        push(conn, codec.encode(msg))\n"
        )
        assert "PERF001" in rule_ids(src, path=self.FANOUT)

    def test_fires_on_encoded_size_in_sim_host(self):
        src = (
            "from repro.wire import codec\n\n"
            "def cost(msg):\n"
            "    return codec.encoded_size(msg) + 4\n"
        )
        assert "PERF001" in rule_ids(src, path="src/repro/sim/host.py")

    def test_fires_on_from_import(self):
        src = (
            "from repro.wire.codec import encode\n\n"
            "def deliver(conn, msg):\n"
            "    push(conn, encode(msg))\n"
        )
        assert "PERF001" in rule_ids(src, path="src/repro/net/tcp.py")

    def test_silent_on_frame_cache_path(self):
        src = (
            "from repro.wire import frames\n\n"
            "def deliver(conns, msg):\n"
            "    frame = frames.encoded_frame(msg).frame\n"
            "    for conn in conns:\n"
            "        push(conn, frame)\n"
        )
        assert rule_ids(src, path=self.FANOUT) == []

    def test_silent_on_decode(self):
        src = (
            "from repro.wire import codec\n\n"
            "def receive(data):\n"
            "    return codec.decode(data)\n"
        )
        assert rule_ids(src, path=self.FANOUT) == []

    def test_silent_outside_fanout_modules(self):
        src = (
            "from repro.wire import codec\n\n"
            "def snapshot(obj):\n"
            "    return codec.encode(obj)\n"
        )
        assert "PERF001" not in rule_ids(src)  # CORE is not fan-out-scoped
        assert "PERF001" not in rule_ids(src, path="src/repro/storage/wal.py")

    def test_noqa_suppresses(self):
        src = (
            "from repro.wire import codec\n\n"
            "def deliver(conn, msg):\n"
            "    push(conn, codec.encode(msg))  # corona: noqa(PERF001)\n"
        )
        assert rule_ids(src, path=self.FANOUT) == []


class TestPERF002RuntimesAccess:
    def test_fires_on_cross_module_runtimes_read(self):
        src = (
            "def peek(core, group):\n"
            "    return core.runtimes[group].log\n"
        )
        assert "PERF002" in rule_ids(src)

    def test_fires_on_runtimes_iteration(self):
        src = (
            "def names(core):\n"
            "    return sorted(core.runtimes)\n"
        )
        assert "PERF002" in rule_ids(src, path="src/repro/bench/experiments.py")

    def test_silent_in_owning_modules(self):
        src = (
            "def dispatch(self, group):\n"
            "    return self.runtimes[group]\n"
        )
        for owner in (
            "src/repro/core/server.py",
            "src/repro/core/group_runtime.py",
            "src/repro/replication/node.py",
            "src/repro/runtime/shard.py",
            "src/repro/sim/shard.py",
        ):
            assert "PERF002" not in rule_ids(src, path=owner), owner

    def test_silent_on_other_attributes(self):
        src = (
            "def sizes(core):\n"
            "    return {g.name: len(g) for g in core.groups.values()}\n"
        )
        assert "PERF002" not in rule_ids(src)

    def test_noqa_suppresses(self):
        src = (
            "def peek(core):\n"
            "    return core.runtimes  # corona: noqa(PERF002)\n"
        )
        assert "PERF002" not in rule_ids(src)


class TestPERF003UnboundedOutbox:
    #: A module on the server send path (PERF003 is include-scoped).
    HOST = "src/repro/runtime/host.py"

    def test_fires_on_unbounded_asyncio_queue(self):
        src = (
            "import asyncio\n\n"
            "def make_mailbox():\n"
            "    return asyncio.Queue()\n"
        )
        assert "PERF003" in rule_ids(src, path=self.HOST)

    def test_silent_on_bounded_queue(self):
        src = (
            "import asyncio\n\n"
            "def make_mailbox(size):\n"
            "    return asyncio.Queue(size)\n"
        )
        assert "PERF003" not in rule_ids(src, path=self.HOST)
        src_kw = (
            "import asyncio\n\n"
            "def make_mailbox(size):\n"
            "    return asyncio.Queue(maxsize=size)\n"
        )
        assert "PERF003" not in rule_ids(src_kw, path=self.HOST)

    def test_fires_on_adhoc_outbox_append(self):
        src = (
            "def deliver(self, conn, frame):\n"
            "    self._outboxes[conn].append(frame)\n"
        )
        assert "PERF003" in rule_ids(src, path=self.HOST)

    def test_fires_on_outbox_put_nowait_in_sim(self):
        src = (
            "def deliver(self, conn, frame):\n"
            "    self.outbox.put_nowait(frame)\n"
        )
        assert "PERF003" in rule_ids(src, path="src/repro/sim/host.py")

    def test_silent_on_bounded_outbox_push(self):
        src = (
            "def deliver(self, conn, frame):\n"
            "    return self._outboxes[conn].push(frame)\n"
        )
        assert "PERF003" not in rule_ids(src, path=self.HOST)

    def test_silent_in_transport_layer(self):
        # repro.net owns the sanctioned bounding (BoundedOutbox's deques,
        # the rx queues that model kernel socket buffers).
        src = (
            "import asyncio\n\n"
            "def make_rx():\n"
            "    return asyncio.Queue()\n"
        )
        assert "PERF003" not in rule_ids(src, path="src/repro/net/memory.py")

    def test_silent_in_client_event_queue(self):
        src = (
            "import asyncio\n\n"
            "def make_events():\n"
            "    return asyncio.Queue()\n"
        )
        assert "PERF003" not in rule_ids(
            src, path="src/repro/runtime/client.py"
        )

    def test_noqa_suppresses(self):
        src = (
            "import asyncio\n\n"
            "def make_mailbox():\n"
            "    return asyncio.Queue()  # corona: noqa(PERF003)\n"
        )
        assert "PERF003" not in rule_ids(src, path=self.HOST)


class TestPERF004WholeStateMaterialize:
    def test_fires_on_materialize_all(self):
        src = (
            "def snapshot(group):\n"
            "    return group.state.materialize_all()\n"
        )
        assert "PERF004" in rule_ids(src, path="src/repro/core/server.py")

    def test_fires_on_materialize_selected(self):
        src = (
            "def subset(view, ids):\n"
            "    return view.state.materialize_selected(ids)\n"
        )
        assert "PERF004" in rule_ids(src, path="src/repro/apps/pubsub.py")

    def test_silent_in_transfer_module(self):
        src = (
            "def build(group):\n"
            "    return group.state.materialize_all()\n"
        )
        assert "PERF004" not in rule_ids(src, path="src/repro/core/transfer.py")

    def test_silent_in_state_and_baselines(self):
        src = (
            "def flatten(state):\n"
            "    return state.materialize_all()\n"
        )
        for owner in (
            "src/repro/core/state.py",
            "src/repro/baselines/isis.py",
        ):
            assert "PERF004" not in rule_ids(src, path=owner), owner

    def test_silent_on_single_object_materialized(self):
        src = (
            "def read(view, oid):\n"
            "    return view.state.get(oid).materialized()\n"
        )
        assert "PERF004" not in rule_ids(src, path="src/repro/apps/chat.py")

    def test_noqa_suppresses(self):
        src = (
            "def snapshot(group):\n"
            "    return group.state.materialize_all()  # corona: noqa(PERF004)\n"
        )
        assert "PERF004" not in rule_ids(src, path="src/repro/core/server.py")


class TestSuppression:
    BAD = "import time\nx = time.time()  # corona: noqa(DET001) -- edge code\n"

    def test_named_noqa_silences(self):
        assert rule_ids(self.BAD) == []

    def test_bare_noqa_silences_everything(self):
        src = "import time\nx = time.time()  # corona: noqa\n"
        assert rule_ids(src) == []

    def test_noqa_for_other_rule_does_not_silence(self):
        src = "import time\nx = time.time()  # corona: noqa(DET002)\n"
        assert "DET001" in rule_ids(src)


class TestConfig:
    def test_rule_enable_list(self):
        config = LintConfig(rules=("DET002",))
        src = "import time\nx = time.time()\n"
        assert rule_ids(src, config=config) == []

    def test_per_rule_exclude_override(self):
        config = LintConfig()
        config.per_rule_exclude["DET001"] = ("somemodule",)
        src = "import time\nx = time.time()\n"
        assert rule_ids(src, path="somemodule.py", config=config) == []

    def test_parse_error_is_a_finding(self):
        findings = lint_source("def broken(:\n", CORE)
        assert [f.rule_id for f in findings] == ["PARSE"]


def test_shipped_tree_is_clean():
    """The acceptance bar: `repro lint src/ --strict` exits 0."""
    from pathlib import Path

    from repro.analysis.lint import lint_paths, load_config

    root = Path(__file__).resolve().parents[2]
    config = load_config(root / "pyproject.toml")
    assert lint_paths([root / "src"], config) == []


class TestEFF001EffectDispatch:
    def test_fires_on_isinstance_if_chain(self):
        src = (
            "from repro.core.events import SendMessage, StartTimer\n\n"
            "def execute(effect):\n"
            "    if isinstance(effect, SendMessage):\n"
            "        send(effect)\n"
            "    elif isinstance(effect, StartTimer):\n"
            "        arm(effect)\n"
        )
        assert rule_ids(src).count("EFF001") == 2

    def test_fires_on_tuple_of_effect_types(self):
        src = (
            "from repro.core.events import CancelTimer, StartTimer\n\n"
            "def is_timer(effect):\n"
            "    return 1 if isinstance(effect, (StartTimer, CancelTimer)) else 0\n"
        )
        assert rule_ids(src).count("EFF001") == 2

    def test_fires_on_module_attribute_access(self):
        src = (
            "from repro.core import events\n\n"
            "def execute(effect):\n"
            "    if isinstance(effect, events.ShutDown):\n"
            "        stop()\n"
        )
        assert "EFF001" in rule_ids(src)

    def test_silent_on_filter_comprehension(self):
        src = (
            "from repro.core.events import SendMessage\n\n"
            "def sends(effects):\n"
            "    return [e for e in effects if isinstance(e, SendMessage)]\n"
        )
        assert rule_ids(src) == []

    def test_silent_on_non_effect_isinstance(self):
        src = (
            "from repro.wire.messages import Ack\n\n"
            "def handle(message):\n"
            "    if isinstance(message, Ack):\n"
            "        return True\n"
        )
        assert rule_ids(src) == []

    def test_silent_in_interpreter_module(self):
        src = (
            "from repro.core.events import SendMessage\n\n"
            "def dispatch(effect):\n"
            "    if isinstance(effect, SendMessage):\n"
            "        deliver(effect)\n"
        )
        assert rule_ids(src, path="src/repro/core/interpreter.py") == []
