"""The state-transfer doc-drift gate (tools/check_transfer_docs.py).

CI runs the script directly; this wrapper keeps the gate inside the
normal test suite too, and pins the property that makes it useful: the
required-name list is *derived* from the code's exports, so a new
transfer knob, snapshot flag, policy, or wire message cannot ship
without documentation.
"""

import importlib.util
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parents[2]


def _load_checker():
    spec = importlib.util.spec_from_file_location(
        "check_transfer_docs", REPO_ROOT / "tools" / "check_transfer_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_protocol_doc_covers_every_exported_name(capsys):
    checker = _load_checker()
    assert checker.main() == 0
    assert "covers all" in capsys.readouterr().out


def test_required_names_track_the_code_exports():
    from repro.core.transfer import transfer_knobs
    from repro.wire import messages
    from repro.wire.messages import TransferPolicy

    names = _load_checker().required_names()
    for knob in transfer_knobs():
        assert knob in names
    for policy in TransferPolicy:
        assert policy.name in names
    snap_flags = [flag for flag in messages.__all__ if flag.startswith("SNAP_")]
    for flag in snap_flags:
        assert flag in names
    for message in ("StateChunk", "ChunkAck", "TransferResume"):
        assert message in names
    # today that is 8 knobs + 5 policies + 3 flags + 3 messages
    assert len(names) == len(transfer_knobs()) + len(TransferPolicy) + len(snap_flags) + 3


def test_gate_fails_when_a_name_goes_missing(monkeypatch, tmp_path, capsys):
    checker = _load_checker()
    doc = REPO_ROOT / "docs" / "protocol.md"
    stripped = tmp_path / "protocol.md"
    stripped.write_text(doc.read_text().replace("resume_ttl", "session_ttl"))
    monkeypatch.setattr(checker, "DOC", stripped)
    assert checker.main() == 1
    assert "resume_ttl" in capsys.readouterr().err


def test_gate_fails_when_the_doc_is_gone(monkeypatch, tmp_path, capsys):
    checker = _load_checker()
    monkeypatch.setattr(checker, "DOC", tmp_path / "nope.md")
    assert checker.main() == 1
    assert "does not exist" in capsys.readouterr().err
