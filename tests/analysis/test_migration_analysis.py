"""Analysis-layer coverage for the elastic-topology work.

Three gates, each tested in both directions:

* the migration lifecycle relays are **load-bearing happens-before
  edges**: an instrumented migration trace is race-free as recorded,
  and stripping the ``mig:*`` edges (``strip_migration_edges``) makes
  the vector-clock checker flag the WAL handoff — proving the
  ordering really comes from the protocol, not from luck;
* **SHARD004** flags GroupRuntime (or ``ServerCore.runtimes``) access
  outside the owning worker's lease, and stays silent for worker-side
  and sanctioned-module code;
* **unjustified_entries** keeps ``--update-baseline`` TODO placeholders
  from ever passing for justifications.
"""

from __future__ import annotations

from repro.analysis.deepcheck import check_graph, unjustified_entries
from repro.analysis.program import ProgramGraph
from repro.analysis.racecheck import (
    RaceRecorder,
    check_race_trace,
    strip_migration_edges,
)
from repro.core.server import ServerConfig
from repro.sim.harness import CoronaWorld

# -- strip-the-edge ----------------------------------------------------------


def _migration_trace(tmp_path):
    recorder = RaceRecorder()
    world = CoronaWorld()
    server = world.add_sharded_server(
        shards=2,
        store_root=tmp_path,
        config=ServerConfig(server_id="server", stateful=True, persist=True),
        race_recorder=recorder,
    )
    a = world.add_client(client_id="a")
    b = world.add_client(client_id="b")
    world.run()
    group = "room-0"
    created = a.call("create_group", group, True)
    world.run()
    assert created.ok
    joins = [c.call("join_group", group) for c in (a, b)]
    world.run()
    assert all(j.ok for j in joins)
    for i in range(3):
        a.call("bcast_update", group, "doc", b"v%d" % i)
    world.run()
    host = server.host
    host.migrate_group(group, 1 - host.router.route(group))
    world.run()
    sent = a.call("bcast_update", group, "doc", b"after")
    world.run()
    assert sent.ok
    assert host.sessions.migration_log[-1].outcome == "committed"
    return recorder.events()


class TestStripMigrationEdges:
    def test_migration_trace_is_race_free_as_recorded(self, tmp_path):
        events = _migration_trace(tmp_path)
        assert [e for e in events if e.obj.startswith("mig:")], (
            "migration produced no mig:* edges; nothing to strip"
        )
        assert check_race_trace(events) == []

    def test_stripping_the_edges_exposes_the_wal_handoff(self, tmp_path):
        events = _migration_trace(tmp_path)
        stripped = strip_migration_edges(events)
        findings = check_race_trace(stripped)
        assert findings, "migration edges are not load-bearing?"
        assert any("wal:room-0" in f.message for f in findings), [
            f.message for f in findings
        ]

    def test_strip_removes_sends_and_their_matched_recvs_only(self):
        rec = RaceRecorder()
        t_mig = rec.send("shard0", "mig:front")
        t_mbox = rec.send("front", "mbox:shard0")
        rec.recv("front", "mbox:front", t_mig)
        rec.recv("shard0", "mbox:shard0", t_mbox)
        rec.write("shard0", "wal:g")
        out = strip_migration_edges(rec.events())
        kinds = [(e.kind, e.obj) for e in out]
        assert ("send", "mig:front") not in kinds
        assert ("recv", "mbox:front") not in kinds       # token-matched
        assert ("send", "mbox:shard0") in kinds          # untouched
        assert ("recv", "mbox:shard0") in kinds
        assert ("write", "wal:g") in kinds


# -- SHARD004 ----------------------------------------------------------------

# Worker owning a threading.Thread -> classified as a shard worker; its
# methods (and subclasses') are the lease side.
LEASE_SCAFFOLD = """
import threading

from repro.core.group_runtime import GroupRuntime

class Worker:
    def __init__(self):
        self._thread = threading.Thread()
    def serve(self, runtime: GroupRuntime):
        runtime.reduce()
"""


def _deep(rules, **modules):
    graph = ProgramGraph.from_sources({
        name.replace("__", "/") + ".py": source
        for name, source in modules.items()
    })
    return check_graph(graph, rules)


class TestShard004:
    def test_fires_outside_the_lease(self):
        findings = _deep(
            ("SHARD004",),
            repro__w=LEASE_SCAFFOLD,
            repro__snoop="""
from repro.core.group_runtime import GroupRuntime
from repro.core.server import ServerCore

class Controller:
    core: ServerCore
    def peek(self, name):
        return self.core.runtimes[name]
    def poke(self, runtime: GroupRuntime):
        runtime.reduce()
""",
        )
        assert [f.rule_id for f in findings] == ["SHARD004", "SHARD004"]
        messages = " / ".join(f.message for f in findings)
        assert "ServerCore.runtimes" in messages
        assert "outside the owning worker's lease" in messages

    def test_silent_on_the_worker_and_its_subclasses(self):
        findings = _deep(
            ("SHARD004",),
            repro__w=LEASE_SCAFFOLD,
            repro__sub="""
from repro.w import Worker
from repro.core.group_runtime import GroupRuntime

class SimWorker(Worker):
    def install(self, runtime: GroupRuntime):
        runtime.reduce()
""",
        )
        assert findings == []

    def test_silent_in_sanctioned_modules(self):
        findings = _deep(
            ("SHARD004",),
            repro__core__inner="""
from repro.core.group_runtime import GroupRuntime

class CoreSide:
    def touch(self, runtime: GroupRuntime):
        runtime.reduce()
""",
            repro__runtime__migration="""
from repro.core.group_runtime import GroupRuntime

def snapshot(runtime: GroupRuntime):
    return runtime.reduce()
""",
        )
        assert findings == []

    def test_repo_tree_has_no_unbaselined_shard004(self):
        from repro.analysis.deepcheck import (
            deepcheck_paths,
            load_baseline,
            split_baselined,
        )
        from pathlib import Path

        repo = Path(__file__).resolve().parents[2]
        _graph, findings = deepcheck_paths(repo / "src", rules=("SHARD004",))
        baseline = load_baseline(repo / "deepcheck-baseline.json")
        new, _ = split_baselined(findings, baseline)
        assert new == [], [f.message for f in new]


# -- the TODO-placeholder gate ----------------------------------------------


class TestUnjustifiedEntries:
    def test_flags_todo_and_empty_justifications_only(self):
        entries = [
            {"rule": "SHARD001", "path": "a.py",
             "justification": "TODO: justify this finding"},
            {"rule": "SHARD002", "path": "b.py", "justification": "   "},
            {"rule": "SHARD003", "path": "c.py"},
            {"rule": "SHARD001", "path": "d.py",
             "justification": "todo — lowercase counts too"},
            {"rule": "SHARD001", "path": "e.py",
             "justification": "monitoring-only read; GIL-atomic int"},
        ]
        flagged = unjustified_entries(entries)
        assert [e["path"] for e in flagged] == [
            "a.py", "b.py", "c.py", "d.py"
        ]

    def test_committed_baseline_is_fully_justified(self):
        from pathlib import Path
        from repro.analysis.deepcheck import load_baseline

        repo = Path(__file__).resolve().parents[2]
        baseline = load_baseline(repo / "deepcheck-baseline.json")
        assert baseline, "committed baseline is missing or empty"
        assert unjustified_entries(baseline) == []
