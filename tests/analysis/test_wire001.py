"""WIRE001 schema-drift detection, plus the dynamic complement: every
registered message type must survive an encode/decode round trip."""

import enum
import typing
from dataclasses import fields, is_dataclass

from repro.analysis.lint import lint_source
from repro.wire import codec
from repro.wire.messages import Message

#: Scaffolding shared by the drifted-module examples.
PRELUDE = """\
from dataclasses import dataclass, field
from repro.wire.codec import register
from repro.wire.messages import Message
"""


def wire_findings(body: str):
    return [
        f for f in lint_source(PRELUDE + body, "src/repro/wire/drifted.py")
        if f.rule_id == "WIRE001"
    ]


class TestWire001Drift:
    def test_unregistered_message_dataclass_fires(self):
        body = (
            "@dataclass(frozen=True)\n"
            "class Rogue(Message):\n"
            "    request_id: int\n"
        )
        findings = wire_findings(body)
        assert findings and "not @register-ed" in findings[0].message

    def test_duplicate_type_code_fires(self):
        body = (
            "@register(240)\n@dataclass(frozen=True)\n"
            "class First(Message):\n    x: int\n\n"
            "@register(240)\n@dataclass(frozen=True)\n"
            "class Second(Message):\n    y: int\n"
        )
        findings = wire_findings(body)
        assert findings and "reuses wire type code 240" in findings[0].message

    def test_unencodable_field_drift_fires(self):
        """The regression demanded by the issue: drift one field's type to
        something the codec cannot encode and the linter must catch it."""
        body = (
            "@register(241)\n@dataclass(frozen=True)\n"
            "class Drifted(Message):\n"
            "    request_id: int\n"
            "    members: set[str]\n"
        )
        findings = wire_findings(body)
        assert findings and "Drifted.members" in findings[0].message

    def test_heterogeneous_tuple_fires(self):
        body = (
            "@register(242)\n@dataclass(frozen=True)\n"
            "class Pairy(Message):\n"
            "    pair: tuple[int, str]\n"
        )
        findings = wire_findings(body)
        assert findings and "tuple[X, ...]" in findings[0].message

    def test_registered_non_dataclass_fires(self):
        body = (
            "@register(243)\n"
            "class Bare(Message):\n"
            "    x: int\n"
        )
        findings = wire_findings(body)
        assert findings and "not a dataclass" in findings[0].message

    def test_well_formed_module_is_silent(self):
        body = (
            "@register(244)\n@dataclass(frozen=True)\n"
            "class Fine(Message):\n"
            "    request_id: int\n"
            "    names: tuple[str, ...]\n"
            "    blob: bytes | None\n"
            "    weights: dict[str, float]\n"
            "    skipped: int = field(default=0, metadata={'wire_skip': True})\n"
        )
        assert wire_findings(body) == []

    def test_shipped_catalogues_are_silent(self):
        from pathlib import Path

        root = Path(__file__).resolve().parents[2]
        for rel in ("src/repro/wire/messages.py", "src/repro/baselines/isis.py"):
            source = (root / rel).read_text()
            findings = [
                f for f in lint_source(source, rel) if f.rule_id == "WIRE001"
            ]
            assert findings == [], rel


# --------------------------------------------------------------------------
# dynamic complement: encode(decode(x)) == x for the whole catalogue
# --------------------------------------------------------------------------

def _synthesize(tp, depth=0):
    """A representative value for annotation *tp* (non-trivial defaults)."""
    assert depth < 8, f"recursive wire type {tp!r}"
    inner = codec._is_optional(tp)
    if inner is not None:
        return _synthesize(inner, depth + 1)
    origin = typing.get_origin(tp)
    if origin is list:
        (elem,) = typing.get_args(tp)
        return [_synthesize(elem, depth + 1)]
    if origin is tuple:
        elem = typing.get_args(tp)[0]
        return (_synthesize(elem, depth + 1),)
    if origin is dict:
        key, val = typing.get_args(tp)
        return {_synthesize(key, depth + 1): _synthesize(val, depth + 1)}
    if isinstance(tp, type):
        if issubclass(tp, bool):
            return True
        if issubclass(tp, enum.IntEnum):
            return list(tp)[-1]
        if issubclass(tp, int):
            return 42
        if issubclass(tp, float):
            return 2.5
        if issubclass(tp, str):
            return "corona"
        if issubclass(tp, (bytes, bytearray, memoryview)):
            return b"\x00\x01payload"
        if is_dataclass(tp):
            if tp is Message:
                # Polymorphic field: any concrete registered type will do.
                from repro.wire.messages import PingRequest
                return PingRequest(request_id=7)
            return _instance_of(tp, depth + 1)
    raise AssertionError(f"don't know how to synthesize {tp!r}")


def _instance_of(cls, depth=0):
    hints = typing.get_type_hints(cls)
    kwargs = {f.name: _synthesize(hints[f.name], depth) for f in fields(cls)}
    return cls(**kwargs)


def test_roundtrip_every_registered_message_type():
    registry = dict(codec._CODE_TO_CLASS)
    assert len(registry) > 30, "catalogue unexpectedly small"
    for code in sorted(registry):
        cls = registry[code]
        original = _instance_of(cls)
        data = codec.encode(original)
        restored = codec.decode(data)
        assert restored == original, cls.__name__
        assert codec.encode(restored) == data, cls.__name__
        assert codec.encoded_size(original) == len(data), cls.__name__
