"""CLI coverage for ``repro deepcheck``, ``repro racecheck`` and the
git-scoped ``repro lint --changed``."""

from __future__ import annotations

import json
import subprocess

import pytest

from repro.analysis.lint import changed_paths
from repro.cli import deepcheck_main, lint_main, racecheck_main

FIXTURE = "import time\n\nasync def tick():\n    time.sleep(1.0)\n"


def make_tree(tmp_path):
    pkg = tmp_path / "src" / "repro"
    pkg.mkdir(parents=True)
    (pkg / "m.py").write_text(FIXTURE)
    return tmp_path / "src"


class TestDeepcheckCli:
    def test_new_findings_fail_the_run(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert deepcheck_main([str(root), "--no-baseline"]) == 1
        out = capsys.readouterr().out
        assert "BLOCK001" in out
        assert "new" in out

    def test_update_baseline_requires_real_justifications(self, tmp_path, capsys):
        """--update-baseline writes TODO placeholders, and the gate keeps
        failing until every one is replaced with an actual explanation —
        a baselined finding without a justification is a silenced bug."""
        root = make_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert deepcheck_main(
            [str(root), "--baseline", str(baseline), "--update-baseline"]
        ) == 0
        payload = json.loads(baseline.read_text())
        assert payload["findings"]
        assert payload["findings"][0]["justification"] == "TODO: justify or fix"
        capsys.readouterr()
        # the placeholder cannot pass as if it were an explanation
        assert deepcheck_main([str(root), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "0 new" in out
        assert "unjustified" in out
        # a real justification clears the gate
        for entry in payload["findings"]:
            entry["justification"] = "fixture: blocking sleep is the point"
        baseline.write_text(json.dumps(payload))
        assert deepcheck_main([str(root), "--baseline", str(baseline)]) == 0

    def test_stale_baseline_entries_are_reported(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({"findings": [{
            "rule": "BLOCK001", "path": "src/repro/gone.py",
            "message": "a finding that no longer exists",
            "justification": "was fixed",
        }]}))
        assert deepcheck_main([str(root), "--baseline", str(baseline)]) == 1
        out = capsys.readouterr().out
        assert "stale" in out

    def test_json_format(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert deepcheck_main([str(root), "--no-baseline", "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload and payload[0]["rule_id"] == "BLOCK001"

    def test_rule_selection_and_unknown_rule(self, tmp_path, capsys):
        root = make_tree(tmp_path)
        assert deepcheck_main(
            [str(root), "--no-baseline", "--rules", "LOCK002"]
        ) == 0
        assert deepcheck_main([str(root), "--rules", "NOPE999"]) == 2

    def test_missing_root_rejected(self, tmp_path):
        assert deepcheck_main([str(tmp_path / "nowhere")]) == 2


class TestRacecheckCli:
    def test_seeded_run_is_clean(self, capsys):
        assert racecheck_main(["--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "racecheck:" in out and "0 race(s)" in out

    def test_injected_race_flips_exit_code(self, capsys):
        assert racecheck_main(["--shards", "2", "--inject-race"]) == 1
        out = capsys.readouterr().out
        assert "RACE001" in out

    def test_dump_then_check_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "race.jsonl"
        assert racecheck_main(["--shards", "2", "--dump", str(trace)]) == 0
        assert trace.is_file()
        capsys.readouterr()
        assert racecheck_main(["--check", str(trace)]) == 0

    def test_malformed_trace_rejected(self, tmp_path):
        trace = tmp_path / "bad.jsonl"
        trace.write_text('{"lane": "front"}\n')  # missing fields
        assert racecheck_main(["--check", str(trace)]) == 2

    def test_missing_trace_rejected(self, tmp_path):
        assert racecheck_main(["--check", str(tmp_path / "none.jsonl")]) == 2


def _git(repo, *args):
    subprocess.run(
        ["git", *args], cwd=repo, check=True, capture_output=True,
        env={"HOME": str(repo), "GIT_AUTHOR_NAME": "t",
             "GIT_AUTHOR_EMAIL": "t@t", "GIT_COMMITTER_NAME": "t",
             "GIT_COMMITTER_EMAIL": "t@t", "PATH": "/usr/bin:/bin:/usr/local/bin"},
    )


@pytest.fixture
def git_repo(tmp_path):
    repo = tmp_path / "repo"
    repo.mkdir()
    _git(repo, "init", "-q")
    (repo / "good.py").write_text("x = 1\n")
    _git(repo, "add", "good.py")
    _git(repo, "commit", "-qm", "seed")
    return repo


class TestLintChanged:
    def test_clean_repo_reports_nothing_changed(self, git_repo, monkeypatch, capsys):
        monkeypatch.chdir(git_repo)
        assert lint_main(["--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_modified_file_is_linted(self, git_repo, monkeypatch, capsys):
        (git_repo / "good.py").write_text("def broken(:\n")
        monkeypatch.chdir(git_repo)
        assert lint_main(["--changed"]) == 1
        assert "PARSE" in capsys.readouterr().out

    def test_untracked_file_is_linted(self, git_repo, monkeypatch, capsys):
        (git_repo / "fresh.py").write_text("def broken(:\n")
        monkeypatch.chdir(git_repo)
        assert lint_main(["--changed"]) == 1
        assert "fresh.py" in capsys.readouterr().out

    def test_unchanged_tracked_files_are_skipped(self, git_repo, monkeypatch, capsys):
        # good.py would lint clean anyway; prove it is not even visited
        # by making the only changed file a non-python one
        (git_repo / "notes.txt").write_text("not python")
        monkeypatch.chdir(git_repo)
        assert lint_main(["--changed"]) == 0
        assert "no changed python files" in capsys.readouterr().out

    def test_changed_paths_outside_git_returns_empty(self, tmp_path):
        assert changed_paths(repo_root=tmp_path / "not-a-repo") == []
