"""Integration tests for the asyncio runtime (memory transport)."""

import asyncio

import pytest

from repro.core.errors import GroupExistsError, NoSuchGroupError
from repro.net.memory import MemoryNetwork
from repro.runtime import CoronaClient, CoronaServer
from repro.storage.store import GroupStore
from repro.wire.messages import ObjectState, TransferPolicy, TransferSpec


def run(coro):
    return asyncio.run(coro)


async def _deployment(net, store=None, name="corona"):
    server = CoronaServer(store=store, transport=net)
    await server.start(name, 0)
    return server


class TestBasics:
    def test_connect_and_ping(self):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            async with await CoronaClient.connect(("corona", 0), "alice", transport=net) as alice:
                server_time = await alice.ping()
                assert isinstance(server_time, float)
            await server.stop()

        run(main())

    def test_create_join_bcast(self):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            bob = await CoronaClient.connect(("corona", 0), "bob", transport=net)
            await alice.create_group("room", initial_state=(ObjectState("doc", b"v0:"),))
            await alice.join_group("room")
            await bob.join_group("room")

            got = asyncio.Event()
            bob.on_event("delivery", lambda ev: got.set())
            await alice.bcast_update("room", "doc", b"edit")
            await asyncio.wait_for(got.wait(), 2)
            assert bob.view("room").state.get("doc").materialized() == b"v0:edit"
            await alice.close()
            await bob.close()
            await server.stop()

        run(main())

    def test_error_surfaces_as_exception(self):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            with pytest.raises(NoSuchGroupError):
                await alice.join_group("ghost")
            await alice.create_group("g")
            with pytest.raises(GroupExistsError):
                await alice.create_group("g")
            await alice.close()
            await server.stop()

        run(main())

    def test_membership_and_listing(self):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            bob = await CoronaClient.connect(("corona", 0), "bob", transport=net)
            await alice.create_group("g", persistent=True)
            await alice.join_group("g", notify_membership=True)

            noticed = asyncio.Event()
            alice.on_event("membership", lambda n: noticed.set())
            await bob.join_group("g")
            await asyncio.wait_for(noticed.wait(), 2)

            members = await alice.get_membership("g")
            assert sorted(m.client_id for m in members) == ["alice", "bob"]
            groups = await alice.list_groups()
            assert [g.name for g in groups] == ["g"]
            await alice.close()
            await bob.close()
            await server.stop()

        run(main())

    def test_locks(self):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            bob = await CoronaClient.connect(("corona", 0), "bob", transport=net)
            await alice.create_group("g")
            await alice.join_group("g")
            await bob.join_group("g")
            await alice.acquire_lock("g", "o")
            waiter = asyncio.create_task(bob.acquire_lock("g", "o"))
            await asyncio.sleep(0.05)
            assert not waiter.done()
            await alice.release_lock("g", "o")
            assert await asyncio.wait_for(waiter, 2) == "o"
            await alice.close()
            await bob.close()
            await server.stop()

        run(main())

    def test_transfer_policy(self):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            await alice.create_group("g", persistent=True)
            await alice.join_group("g")
            for i in range(5):
                await alice.bcast_update("g", "doc", b"%d" % i)
            late = await CoronaClient.connect(("corona", 0), "late", transport=net)
            view = await late.join_group(
                "g", transfer=TransferSpec(policy=TransferPolicy.LATEST_N, last_n=2)
            )
            assert view.state.get("doc").materialized() == b"34"
            await alice.close()
            await late.close()
            await server.stop()

        run(main())


class TestPersistence:
    def test_restart_recovers_groups(self, tmp_path):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net, store=GroupStore(tmp_path / "d"))
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            await alice.create_group("g", persistent=True)
            await alice.join_group("g")
            await alice.bcast_update("g", "doc", b"durable")
            await alice.close()
            await server.stop()

            server2 = await _deployment(
                net, store=GroupStore(tmp_path / "d"), name="corona2"
            )
            carol = await CoronaClient.connect(("corona2", 0), "carol", transport=net)
            view = await carol.join_group("g")
            assert view.state.get("doc").materialized() == b"durable"
            await carol.close()
            await server2.stop()

        run(main())

    def test_client_disconnect_removes_membership(self, tmp_path):
        async def main():
            net = MemoryNetwork()
            server = await _deployment(net)
            alice = await CoronaClient.connect(("corona", 0), "alice", transport=net)
            bob = await CoronaClient.connect(("corona", 0), "bob", transport=net)
            await alice.create_group("g", persistent=True)
            await alice.join_group("g", notify_membership=True)
            await bob.join_group("g")

            left = asyncio.Event()
            alice.on_event("membership", lambda n: left.set() if n.left else None)
            await bob.close()  # abrupt disconnect = fail-stop client
            await asyncio.wait_for(left.wait(), 2)
            members = await alice.get_membership("g")
            assert [m.client_id for m in members] == ["alice"]
            await alice.close()
            await server.stop()

        run(main())


class TestTcpTransport:
    def test_over_real_sockets(self):
        async def main():
            server = CoronaServer()
            host, port = await server.start("127.0.0.1", 0)
            alice = await CoronaClient.connect((host, port), "alice")
            bob = await CoronaClient.connect((host, port), "bob")
            await alice.create_group("g")
            await alice.join_group("g")
            await bob.join_group("g")
            got = asyncio.Event()
            bob.on_event("delivery", lambda ev: got.set())
            await alice.bcast_update("g", "o", b"over-tcp")
            await asyncio.wait_for(got.wait(), 5)
            assert bob.view("g").state.get("o").materialized() == b"over-tcp"
            await alice.close()
            await bob.close()
            await server.stop()

        run(main())
