"""Sharded host parity: one client script, two sharded backends.

The sharded asyncio runtime (:class:`repro.runtime.shard.ShardedHost`)
and its simulated mirror (:class:`repro.sim.shard.ShardedSimHost`) share
the front sessions core, the router, and the per-shard server cores.
Driving the same serialized client script through both must produce:

* identical aggregated :class:`DispatchStats` (front + every shard),
* identical reply payloads (scatter-gathered ListGroups included),
* identical per-shard recovered storage after a clean stop.

A fixed core clock pins every timestamp that lands in replies or on
disk, so the comparisons are exact.
"""

import asyncio

import pytest

from repro.core.server import ServerConfig
from repro.net.tcp import TcpTransport
from repro.runtime.client import CoronaClient
from repro.runtime.shard import ShardedHost
from repro.sim.harness import CoronaWorld
from repro.storage.store import GroupStore

SHARDS = 3
GROUPS = [f"par-g{i}" for i in range(4)]


class FixedClock:
    def now(self) -> float:
        return 123.25


#: (client, method, args) — executed strictly one at a time on both
#: backends; replies to these are compared across backends.
SCRIPT = (
    [("alice", "create_group", (g, True)) for g in GROUPS]
    + [("alice", "join_group", (g,)) for g in GROUPS]
    + [
        ("bob", "join_group", (GROUPS[0],)),
        ("bob", "join_group", (GROUPS[2],)),
        ("alice", "bcast_state", (GROUPS[0], "doc", b"base")),
        ("alice", "bcast_update", (GROUPS[0], "doc", b"+1")),
        ("bob", "bcast_update", (GROUPS[2], "doc", b"hello")),
        ("alice", "list_groups", ()),
        ("bob", "get_membership", (GROUPS[0],)),
        ("bob", "leave_group", (GROUPS[0],)),
        ("alice", "delete_group", (GROUPS[3],)),
    ]
)


def _normalize(method, value):
    """Reply payloads as comparable primitives (GroupView has no __eq__)."""
    if method == "join_group":
        return (
            value.name,
            value.next_seqno,
            tuple((m.client_id, m.role) for m in value.members),
            value.role,
        )
    return value


def _recover_shards(root):
    recovered = {}
    for index in range(SHARDS):
        store = GroupStore(root / f"shard{index}")
        groups = store.recover_all()
        store.close()
        recovered[index] = {
            name: (rec.meta, rec.checkpoint_seqno, rec.snapshot, rec.records)
            for name, rec in groups.items()
        }
    return recovered


def _drive_asyncio(root):
    async def main():
        host = ShardedHost(
            ServerConfig(server_id="server"),
            TcpTransport(),
            shards=SHARDS,
            store_root=root,
            core_clock=FixedClock(),
        )
        address = await host.listen(("127.0.0.1", 0))
        clients = {
            name: await CoronaClient.connect(address, name)
            for name in ("alice", "bob")
        }
        replies = []
        for name, method, args in SCRIPT:
            result = await getattr(clients[name], method)(*args)
            replies.append(_normalize(method, result))
        # replies are answered before trailing membership notifications
        # finish relaying through the front loop: let the pipeline drain,
        # then snapshot before closing (disconnects race the shutdown)
        await asyncio.sleep(0.3)
        stats = host.dispatch_stats
        for client in clients.values():
            await client.close()
        await host.stop()
        return stats, replies

    return asyncio.run(main())


def _drive_sim(root):
    world = CoronaWorld()
    server = world.add_sharded_server(
        config=ServerConfig(server_id="server"),
        shards=SHARDS,
        store_root=root,
        core_clock=FixedClock(),
    )
    clients = {name: world.add_client(client_id=name) for name in ("alice", "bob")}
    world.run()
    replies = []
    for name, method, args in SCRIPT:
        call = clients[name].call(method, *args)
        world.run()
        assert call.ok, f"{method}{args} failed: {call.error}"
        replies.append(_normalize(method, call.value))
    stats = server.host.dispatch_stats
    host = server.host
    for worker in host.workers:
        if worker.store is not None:
            worker.store.close()
    return stats, replies


class TestShardedParity:
    def test_stats_replies_and_storage_match(self, tmp_path):
        a_stats, a_replies = _drive_asyncio(tmp_path / "a")
        s_stats, s_replies = _drive_sim(tmp_path / "s")

        # DispatchStats is a dataclass: one comparison covers every
        # counter of the front interpreter plus all three shards'.
        assert a_stats == s_stats
        # every reply payload matches, including the merged ListGroups
        # (scatter-gather must be order-deterministic) and membership
        assert a_replies == s_replies
        # the same groups recovered from the same shards, byte for byte
        a_rec = _recover_shards(tmp_path / "a")
        s_rec = _recover_shards(tmp_path / "s")
        assert a_rec == s_rec
        persisted = {name for shard in a_rec.values() for name in shard}
        assert persisted == set(GROUPS[:3]), "deleted group must be purged"

    def test_sim_script_is_deterministic(self, tmp_path):
        first_stats, first_replies = _drive_sim(tmp_path / "one")
        second_stats, second_replies = _drive_sim(tmp_path / "two")
        assert first_stats == second_stats
        assert first_replies == second_replies
        assert _recover_shards(tmp_path / "one") == _recover_shards(tmp_path / "two")
