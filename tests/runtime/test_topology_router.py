"""Property tests for the lease-aware router and unit tests for the
autoscaling controller.

The router property the elastic layer leans on: once a group holds a
lease, ``route()`` answers that lease no matter what other churn the
router sees — creations, drains, undrains, unpins of *other* groups,
or further migrations of this one (the latest lease wins, epoch up by
one each time).  Hypothesis drives arbitrary operation sequences; the
oracle is a dict.

The controller tests feed synthetic :class:`ShardSample` rounds and
check the three rules (restart wedged > split hot > merge idle), the
cooldown hysteresis, and that wedge detection keeps counting *through*
a cooldown.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime.shard import ShardRouter
from repro.runtime.topology import (
    MigrateGroup,
    RestartShard,
    ShardSample,
    TopologyConfig,
    TopologyController,
)

SHARDS = 4

GROUPS = [f"g{i}" for i in range(8)]

#: One router mutation: (op, group-index-or-shard).
_ops = st.one_of(
    st.tuples(st.just("assign"), st.integers(0, len(GROUPS) - 1)),
    st.tuples(st.just("migrate"), st.integers(0, len(GROUPS) - 1),
              st.integers(0, SHARDS - 1)),
    st.tuples(st.just("unpin"), st.integers(0, len(GROUPS) - 1)),
    st.tuples(st.just("drain"), st.integers(0, SHARDS - 1)),
    st.tuples(st.just("undrain"), st.integers(0, SHARDS - 1)),
)


class TestRouterLeaseProperty:
    @settings(max_examples=200, deadline=None)
    @given(st.lists(_ops, max_size=40))
    def test_route_follows_the_latest_lease(self, ops):
        router = ShardRouter(SHARDS)
        leases = {}          # the oracle: group -> last lease, if any
        epochs = {}
        for op in ops:
            if op[0] == "assign":
                group = GROUPS[op[1]]
                shard = router.assign(group)
                # assign may create or drop a lease; mirror the router's
                # published table rather than re-deriving its ring logic
                leases = dict(router.pins())
                assert router.route(group) == shard
            elif op[0] == "migrate":
                group, dst = GROUPS[op[1]], op[2]
                new_epoch = router.migrate(group, dst)
                leases[group] = dst
                epochs[group] = epochs.get(group, 0) + 1
                assert new_epoch == epochs[group]
            elif op[0] == "unpin":
                leases.pop(GROUPS[op[1]], None)
                router.unpin(GROUPS[op[1]])
            elif op[0] == "drain":
                router.drain(op[1])
            else:
                router.undrain(op[1])
            # the invariant: every leased group routes to its lease,
            # drains notwithstanding; epochs never regress
            for group, shard in leases.items():
                assert router.route(group) == shard
            for group, epoch in epochs.items():
                assert router.epoch(group) == epoch

    @settings(max_examples=100, deadline=None)
    @given(st.lists(_ops, max_size=40))
    def test_unleased_routing_is_pure(self, ops):
        """Groups nobody leased always route to the ring owner — church
        of consistent hashing: independent routers agree forever."""
        router = ShardRouter(SHARDS)
        reference = ShardRouter(SHARDS)
        for op in ops:
            if op[0] == "assign":
                router.assign(GROUPS[op[1]])
            elif op[0] == "migrate":
                router.migrate(GROUPS[op[1]], op[2])
            elif op[0] == "unpin":
                router.unpin(GROUPS[op[1]])
            elif op[0] == "drain":
                router.drain(op[1])
            else:
                router.undrain(op[1])
        for name in ("other-0", "other-1", "other-2"):
            assert router.route(name) == reference.route(name)


def _sample(shard, depth, accepted, groups=("a", "b")):
    return ShardSample(
        shard=shard, queue_depth=depth, accepted=accepted,
        commit_stalls=0, groups=tuple(groups),
    )


def _quiet(n, accepted=0):
    return [_sample(s, 0, accepted, groups=("x%d" % s,)) for s in range(n)]


class TestControllerRules:
    def test_split_hot_peels_group_to_coldest(self):
        ctrl = TopologyController(TopologyConfig(hot_queue_depth=10))
        actions = ctrl.observe([
            _sample(0, 50, 100, groups=("gb", "ga", "gc")),
            _sample(1, 3, 10, groups=("gd",)),
            _sample(2, 1, 5, groups=()),
        ])
        assert actions == [MigrateGroup("ga", 0, 2)]

    def test_one_giant_group_cannot_be_split(self):
        ctrl = TopologyController(TopologyConfig(hot_queue_depth=10))
        actions = ctrl.observe([
            _sample(0, 50, 100, groups=("only",)),
            _sample(1, 0, 0, groups=()),
        ])
        assert actions == []

    def test_merge_idle_consolidates_smallest_onto_busiest(self):
        ctrl = TopologyController(TopologyConfig(idle_queue_depth=2))
        actions = ctrl.observe([
            _sample(0, 0, 10, groups=("a", "b", "c")),
            _sample(1, 1, 10, groups=("z",)),
        ])
        assert actions == [MigrateGroup("z", 1, 0)]

    def test_no_merge_while_anyone_is_busy(self):
        # depth 5: neither hot (default 32) nor idle (2) — nothing fires
        ctrl = TopologyController(TopologyConfig(idle_queue_depth=2))
        actions = ctrl.observe([
            _sample(0, 5, 10, groups=("a", "b")),
            _sample(1, 0, 10, groups=("z",)),
        ])
        assert actions == []

    def test_wedged_worker_restarts_after_n_flat_samples(self):
        cfg = TopologyConfig(hot_queue_depth=10, wedged_samples=3)
        ctrl = TopologyController(cfg)
        wedged = [_sample(0, 99, accepted=7, groups=("a",)),
                  _sample(1, 0, accepted=1, groups=("b", "c"))]
        assert ctrl.observe(wedged) == []          # first sight: no delta yet
        assert ctrl.observe(wedged) == []          # flat x1
        assert ctrl.observe(wedged) == []          # flat x2
        assert ctrl.observe(wedged) == [RestartShard(0)]
        # restart outranks the (also matching) split rule
        assert all(not isinstance(a, MigrateGroup) for a in ctrl.decisions)

    def test_cooldown_suppresses_actions(self):
        cfg = TopologyConfig(hot_queue_depth=10, cooldown_samples=2)
        ctrl = TopologyController(cfg)

        def hot(tick):
            # accepted keeps rising: hot but NOT wedged
            return [_sample(0, 50, 100 + 10 * tick, groups=("a", "b")),
                    _sample(1, 0, 10 + tick, groups=("c",))]

        assert ctrl.observe(hot(0)) == [MigrateGroup("a", 0, 1)]
        assert ctrl.observe(hot(1)) == []          # cooling
        assert ctrl.observe(hot(2)) == []          # cooling
        assert ctrl.observe(hot(3)) == [MigrateGroup("a", 0, 1)]

    def test_wedge_counting_continues_through_cooldown(self):
        cfg = TopologyConfig(
            hot_queue_depth=10, wedged_samples=3, cooldown_samples=3
        )
        ctrl = TopologyController(cfg)
        # fire a split to enter cooldown...
        hot = [_sample(0, 50, 100, groups=("a", "b")),
               _sample(1, 0, 10, groups=("c",))]
        assert ctrl.observe(hot)
        # ...while shard 1 wedges during the quiet period
        wedged = [_sample(0, 0, 200, groups=("b",)),
                  _sample(1, 99, accepted=10, groups=("c", "d"))]
        assert ctrl.observe(wedged) == []          # cooldown (flat seen x0)
        assert ctrl.observe(wedged) == []          # cooldown (flat x1)
        assert ctrl.observe(wedged) == []          # cooldown (flat x2)
        # cooldown over and the wedge counter is already ripe
        assert ctrl.observe(wedged) == [RestartShard(1)]

    def test_quiet_topology_decides_nothing(self):
        ctrl = TopologyController()
        for _ in range(10):
            assert ctrl.observe(_quiet(3)) == []
        assert ctrl.decisions == []
