"""Shard routing edge cases: drain placement, cross-shard clients,
deterministic restart re-routing, and the ordering contract under
sharding.

The router contract under test (see ``repro.runtime.shard``):

* ``route`` is pure consistent hashing plus pins — existing groups keep
  resolving to the shard that owns them even while it is draining;
* ``assign`` (group creation only) avoids drained shards and pins any
  displaced placement, so the group stays put after the drain ends;
* restarting a shard changes no placement: recovery re-seeds the pins
  from the per-shard store, so clients re-join exactly where they were.
"""

import asyncio

from repro.analysis.tracecheck import check_world
from repro.core.server import ServerConfig
from repro.net.tcp import TcpTransport
from repro.runtime.client import CoronaClient
from repro.runtime.shard import ShardRouter, ShardedHost
from repro.sim.harness import CoronaWorld


def _group_owned_by(router: ShardRouter, shard: int, prefix: str) -> str:
    return next(
        name for name in (f"{prefix}-{i}" for i in range(10_000))
        if router.natural(name) == shard
    )


class TestRouterContract:
    def test_routing_is_stable_across_instances(self):
        names = [f"room-{i}" for i in range(64)]
        first = ShardRouter(4)
        second = ShardRouter(4)
        assert [first.route(n) for n in names] == [second.route(n) for n in names]

    def test_every_shard_owns_something(self):
        router = ShardRouter(4)
        owners = {router.route(f"room-{i}") for i in range(256)}
        assert owners == {0, 1, 2, 3}

    def test_drain_redirects_new_placements_only(self):
        router = ShardRouter(4)
        drained = 2
        existing = _group_owned_by(router, drained, "old")
        newcomer = _group_owned_by(router, drained, "new")
        router.drain(drained)
        # routing for existing groups is untouched while draining
        assert router.route(existing) == drained
        # but a creation is displaced off the drained shard and pinned
        owner = router.assign(newcomer)
        assert owner != drained
        assert router.route(newcomer) == owner
        # the pin survives the drain ending: the group does not move
        router.undrain(drained)
        assert router.route(newcomer) == owner
        # while an undisplaced creation unpins back to its natural owner
        assert router.assign(existing) == drained

    def test_assign_skips_consecutive_drained_shards(self):
        router = ShardRouter(4)
        name = _group_owned_by(router, 1, "multi")
        router.drain(1)
        first_choice = router.assign(name)
        router.unpin(name)
        router.drain(first_choice)
        second_choice = router.assign(name)
        assert second_choice not in (1, first_choice)


class TestCrossShardClients:
    def test_one_client_spanning_two_shards(self):
        world = CoronaWorld()
        server = world.add_sharded_server(shards=4)
        sender = world.add_client(client_id="sender")
        listener = world.add_client(client_id="listener")
        world.run()
        router = server.host.router
        first = "span-0"
        second = next(
            f"span-{i}" for i in range(1, 100)
            if router.natural(f"span-{i}") != router.natural(first)
        )
        for group in (first, second):
            created = sender.call("create_group", group, False)
            world.run()
            assert created.ok
            for client in (sender, listener):
                joined = client.call("join_group", group)
                world.run()
                assert joined.ok
        # the two groups live in different cores
        workers = server.host.workers
        assert first in workers[router.route(first)].core.runtimes
        assert first not in workers[router.route(second)].core.runtimes
        assert second in workers[router.route(second)].core.runtimes
        # broadcasts through both shards reach the spanning client
        before = len(listener.deliveries)
        for group in (first, second):
            sent = sender.call("bcast_update", group, "doc", group.encode())
            world.run()
            assert sent.ok
        delivered = [event.group for _t, event in listener.deliveries[before:]]
        assert delivered == [first, second]

    def test_group_created_during_drain_stays_displaced(self):
        world = CoronaWorld()
        server = world.add_sharded_server(shards=4)
        client = world.add_client(client_id="c")
        world.run()
        router = server.host.router
        natural = router.natural("drained-group")
        router.drain(natural)
        created = client.call("create_group", "drained-group", False)
        world.run()
        assert created.ok
        owner = router.route("drained-group")
        assert owner != natural
        assert "drained-group" in server.host.workers[owner].core.runtimes
        router.undrain(natural)
        joined = client.call("join_group", "drained-group")
        world.run()
        assert joined.ok
        sent = client.call("bcast_update", "drained-group", "doc", b"still here")
        world.run()
        assert sent.ok
        assert router.route("drained-group") == owner


class TestShardRestart:
    def test_restart_reroutes_deterministically(self, tmp_path):
        async def main():
            host = ShardedHost(
                ServerConfig(server_id="server"),
                TcpTransport(),
                shards=3,
                store_root=tmp_path,
            )
            address = await host.listen(("127.0.0.1", 0))
            client = await CoronaClient.connect(address, "alice")
            groups = [f"rst-{i}" for i in range(6)]
            for group in groups:
                await client.create_group(group, persistent=True)
                await client.join_group(group)
                await client.bcast_state(group, "doc", group.encode())
            placement = {g: host.router.route(g) for g in groups}
            target = placement[groups[0]]
            mine = {g for g, shard in placement.items() if shard == target}
            stats_before = host.dispatch_stats

            host.restart_shard(target)

            # placement is untouched: recovery re-seeded the same routing
            assert {g: host.router.route(g) for g in groups} == placement
            # the fresh core recovered exactly its own groups from disk
            assert set(host.workers[target].core.runtimes) == mine
            # counters survive the restart (retired shard stats folded in)
            assert host.dispatch_stats.sends >= stats_before.sends
            # session state is gone, so the client re-joins and resumes
            view = await client.join_group(groups[0])
            assert view.name == groups[0]
            await client.bcast_update(groups[0], "doc", b"after restart")
            await client.close()
            await host.stop()

        asyncio.run(main())


class TestShardedOrdering:
    def test_sharded_trace_passes_tracecheck(self):
        """ORD001-ORD004 hold for a multi-group sharded workload."""
        world = CoronaWorld(trace=True)
        world.add_sharded_server(
            shards=3, config=ServerConfig(server_id="server")
        )
        clients = [world.add_client(client_id=f"c{i}") for i in range(3)]
        world.run()
        groups = [f"tg{i}" for i in range(4)]
        for group in groups:
            created = clients[0].call("create_group", group, True)
            world.run()
            assert created.ok
            for client in clients:
                joined = client.call("join_group", group)
                world.run()
                assert joined.ok
        for n in range(24):
            sender = clients[n % len(clients)]
            sent = sender.call(
                "bcast_update", groups[n % len(groups)], f"o{n % 2}", bytes([n])
            )
            world.run()
            assert sent.ok
        reduced = clients[0].call("reduce_log", groups[0])
        world.run()
        assert reduced.ok
        deliveries = [e for e in world.trace if e.kind == "deliver"]
        assert len(deliveries) == 24 * len(clients)
        assert [str(f) for f in check_world(world)] == []
