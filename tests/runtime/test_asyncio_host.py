"""Unit tests for the AsyncioHost effect executor (toy cores, memory
transport)."""

import asyncio

import pytest

from repro.core.events import (
    CancelTimer,
    CloseConnection,
    Notify,
    OpenConnection,
    ProtocolCore,
    SendMessage,
    SendMulticast,
    StartTimer,
)
from repro.net.memory import MemoryNetwork
from repro.runtime.host import AsyncioHost
from repro.wire.messages import Ack


def run(coro):
    return asyncio.run(coro)


class EchoCore(ProtocolCore):
    def __init__(self):
        super().__init__()
        self.closed = []
        self.connected = []

    def handle_connected(self, conn, peer, key):
        self.connected.append((conn, key))

    def handle_message(self, conn, message):
        self.send(conn, message)

    def handle_closed(self, conn):
        self.closed.append(conn)


class TimerCore(ProtocolCore):
    def __init__(self):
        super().__init__()
        self.fired = []

    def handle_timer(self, key):
        self.fired.append(key)


class TestConnections:
    def test_echo_over_memory_transport(self):
        async def main():
            net = MemoryNetwork()
            server_host = AsyncioHost(EchoCore(), net)
            await server_host.listen("echo")
            conn = await net.dial("echo")
            await conn.send(Ack(7))
            assert await asyncio.wait_for(conn.receive(), 2) == Ack(7)
            await server_host.stop()

        run(main())

    def test_dial_failure_surfaces_as_closed_conn(self):
        async def main():
            net = MemoryNetwork()
            core = EchoCore()
            host = AsyncioHost(core, net)
            host.dispatch([OpenConnection("nobody-home", key="dial")])
            await asyncio.sleep(0.05)
            assert core.connected and core.connected[0][1] == "dial"
            assert core.closed == [core.connected[0][0]]
            await host.stop()

        run(main())

    def test_close_connection_effect(self):
        async def main():
            net = MemoryNetwork()
            core = EchoCore()
            host = AsyncioHost(core, net)
            await host.listen("svc")
            conn = await net.dial("svc")
            await asyncio.sleep(0.05)
            server_conn_id = core.connected[0][0]
            host.dispatch([CloseConnection(server_conn_id)])
            assert await asyncio.wait_for(conn.receive(), 2) is None
            await host.stop()

        run(main())

    def test_peer_close_delivers_on_closed(self):
        async def main():
            net = MemoryNetwork()
            core = EchoCore()
            host = AsyncioHost(core, net)
            await host.listen("svc")
            conn = await net.dial("svc")
            await asyncio.sleep(0.05)
            await conn.close()
            await asyncio.sleep(0.05)
            assert core.closed == [core.connected[0][0]]
            await host.stop()

        run(main())

    def test_send_to_unknown_conn_is_dropped(self):
        async def main():
            net = MemoryNetwork()
            host = AsyncioHost(EchoCore(), net)
            host.dispatch([SendMessage(999, Ack(1))])  # must not raise
            await host.stop()

        run(main())

    def test_multicast_fallback_unicasts_to_each(self):
        async def main():
            net = MemoryNetwork()
            core = EchoCore()
            host = AsyncioHost(core, net)
            await host.listen("svc")
            a = await net.dial("svc")
            b = await net.dial("svc")
            await asyncio.sleep(0.05)
            conn_ids = tuple(conn for conn, _k in core.connected)
            host.dispatch([SendMulticast(conn_ids, Ack(5))])
            assert await asyncio.wait_for(a.receive(), 2) == Ack(5)
            assert await asyncio.wait_for(b.receive(), 2) == Ack(5)
            await host.stop()

        run(main())


class TestTimersAndNotify:
    def test_timer_fires(self):
        async def main():
            core = TimerCore()
            host = AsyncioHost(core, MemoryNetwork())
            host.dispatch([StartTimer("tick", 0.02)])
            await asyncio.sleep(0.08)
            assert core.fired == ["tick"]
            await host.stop()

        run(main())

    def test_rearm_replaces(self):
        async def main():
            core = TimerCore()
            host = AsyncioHost(core, MemoryNetwork())
            host.dispatch([StartTimer("t", 0.02), StartTimer("t", 0.06)])
            await asyncio.sleep(0.04)
            assert core.fired == []
            await asyncio.sleep(0.06)
            assert core.fired == ["t"]
            await host.stop()

        run(main())

    def test_cancel_timer(self):
        async def main():
            core = TimerCore()
            host = AsyncioHost(core, MemoryNetwork())
            host.dispatch([StartTimer("t", 0.02), CancelTimer("t")])
            await asyncio.sleep(0.05)
            assert core.fired == []
            await host.stop()

        run(main())

    def test_notify_reaches_handler_and_unknown_effect_raises(self):
        async def main():
            host = AsyncioHost(ProtocolCore(), MemoryNetwork())
            seen = []
            host.on_notify(lambda kind, payload: seen.append((kind, payload)))
            host.dispatch([Notify("hello", 42)])
            assert seen == [("hello", 42)]
            with pytest.raises(TypeError):
                host.dispatch([object()])
            await host.stop()

        run(main())

    def test_invoke_drains_core_buffer(self):
        async def main():
            core = ProtocolCore()
            host = AsyncioHost(core, MemoryNetwork())
            seen = []
            host.on_notify(lambda kind, payload: seen.append(kind))

            def action():
                core.emit(Notify("from-invoke", None))
                return "result"

            assert host.invoke(action) == "result"
            assert seen == ["from-invoke"]
            await host.stop()

        run(main())
