"""Host parity: one effect script, two backends, identical semantics.

The asyncio runtime and the simulator share a single dispatch
implementation (repro.core.interpreter); these tests push the same effect
script through both and assert the observable outcomes match: dispatch
counters, notify events, recovered on-disk state, and timer behavior
(re-arm, cancel-missing).
"""

import asyncio

from repro.core.events import (
    AppendWal,
    CancelTimer,
    CreateGroupStorage,
    Notify,
    ProtocolCore,
    SendMessage,
    SendMulticast,
    ShutDown,
    StartTimer,
    TruncateWal,
    WriteCheckpoint,
)
from repro.net.flowcontrol import FlowControlConfig
from repro.net.memory import MemoryNetwork
from repro.runtime.host import AsyncioHost
from repro.sim.host import SimHost
from repro.sim.kernel import SimKernel
from repro.sim.network import SimNetwork
from repro.sim.profiles import ETHERNET_10MBPS, ULTRASPARC_1
from repro.storage.store import GroupStore
from repro.wire.messages import Ack, Delivery, UpdateKind, UpdateRecord


def effect_script():
    """The ISSUE's parity script: re-arm, cancel-missing, dead-conn sends,
    the WAL lifecycle, a notification, and shutdown."""
    return [
        StartTimer("t", 5.0),
        StartTimer("t", 9.0),            # re-arm: one pending firing
        CancelTimer("missing"),          # cancel-missing: no-op
        SendMessage(99, Ack(1)),         # dead connection: counted drop
        SendMulticast((98, 99), Ack(2)),  # all receivers dead
        CreateGroupStorage("g", b"meta"),
        AppendWal("g", 0, b"rec-0"),
        AppendWal("g", 1, b"rec-1"),
        WriteCheckpoint("g", 1, b"snap"),
        TruncateWal("g", 1),             # already rotated by checkpoint
        Notify("parity", 7),
        ShutDown("script done"),
    ]


class TimerCore(ProtocolCore):
    def __init__(self):
        super().__init__()
        self.fired = []

    def handle_timer(self, key):
        self.fired.append(key)


def run_script_on_asyncio(tmp_path):
    events = []

    async def main():
        host = AsyncioHost(
            TimerCore(), MemoryNetwork(), store=GroupStore(tmp_path)
        )
        host.on_notify(lambda kind, payload: events.append((kind, payload)))
        host.dispatch(effect_script())
        await host.wait_stopped()
        host.store.close()
        return host

    host = asyncio.run(main())
    return host.dispatch_stats, events, GroupStore(tmp_path).recover("g")


def run_script_on_sim(tmp_path):
    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment(
        "lan", ETHERNET_10MBPS.bytes_per_sec, ETHERNET_10MBPS.latency
    )
    host = SimHost(
        kernel, network, "h", "lan", ULTRASPARC_1, store=GroupStore(tmp_path)
    )
    host.set_core(TimerCore())
    events = []
    host.on_notify(lambda kind, payload: events.append((kind, payload)))
    host.interpreter.execute(effect_script())
    kernel.run()
    return host.dispatch_stats, events, GroupStore(tmp_path).recover("g")


class TestEffectScriptParity:
    def test_identical_outcomes_on_both_backends(self, tmp_path):
        a_stats, a_events, a_rec = run_script_on_asyncio(tmp_path / "a")
        s_stats, s_events, s_rec = run_script_on_sim(tmp_path / "s")

        # DispatchStats is a dataclass: one comparison covers every counter.
        assert a_stats == s_stats
        assert a_events == s_events == [("parity", 7)]
        assert (a_rec.meta, a_rec.checkpoint_seqno, a_rec.snapshot, a_rec.records) \
            == (s_rec.meta, s_rec.checkpoint_seqno, s_rec.snapshot, s_rec.records)

    def test_script_counters_match_the_contract(self, tmp_path):
        stats, _events, recovered = run_script_on_sim(tmp_path)
        assert stats.timers_started == 2
        assert stats.timers_cancelled == 1
        assert stats.sends == 0 and stats.send_drops == 1
        assert stats.multicast_fanout == 0 and stats.multicast_drops == 2
        assert stats.storage_creates == 1
        assert stats.wal_appends == 2
        assert stats.checkpoints == 1
        assert stats.wal_truncates == 1
        assert stats.notifications == 1
        assert stats.shutdowns == 1
        # checkpoint rotated the WAL, so TruncateWal had nothing left to do
        assert recovered.checkpoint_seqno == 1
        assert recovered.snapshot == b"snap"
        assert recovered.records == []


TINY_FLOW = FlowControlConfig(
    max_outbox_frames=8,
    max_outbox_bytes=1 << 20,
    coalesce_watermark=2,
    link_window=0.25,
)


class SinkCore(ProtocolCore):
    """Accepts connections and remembers them; never reacts otherwise."""

    def __init__(self):
        super().__init__()
        self.connected = []

    def handle_connected(self, conn, peer, key):
        self.connected.append(conn)


def _delivery(seqno, kind, object_id):
    return Delivery(
        "g", UpdateRecord(seqno, kind, object_id, b"x" * 64, "blaster", 0.0)
    )


def state_burst(conn):
    """12 STATE frames over 2 object ids, far over coalesce_watermark=2:
    every push past the first two supersedes its queued predecessor, so
    the outbox plateaus at depth 2 and ten frames coalesce away.  The
    trailing Ack rides the control lane.  All 13 sends form one
    consecutive run, so they flush through deliver_batch on both
    backends."""
    script = [
        SendMessage(conn, _delivery(i, UpdateKind.STATE, f"obj-{i % 2}"))
        for i in range(12)
    ]
    script.append(SendMessage(conn, Ack(99)))
    return script


def update_burst(conn):
    """12 UPDATE frames (append semantics — never coalescible) to one
    object: the 9th push overflows max_outbox_frames=8, the sweep finds
    nothing droppable, and the connection is lag-kicked; the rest are
    refused.  Notify effects break the run so each send takes the
    unbatched per-message path."""
    script = []
    for i in range(12):
        script.append(SendMessage(conn, _delivery(i, UpdateKind.UPDATE, "obj")))
        script.append(Notify("tick", i))
    return script


def run_burst_on_asyncio(make_script):
    async def main():
        net = MemoryNetwork()
        core = SinkCore()
        host = AsyncioHost(core, net, flow=TINY_FLOW)
        await host.listen("svc")
        await net.dial("svc")
        await asyncio.sleep(0.05)
        (conn,) = core.connected
        # dispatch() is synchronous, so every push lands in the outbox
        # before the writer task gets the loop back — the same
        # accept/coalesce/kick sequence as one interpreter.execute()
        # batch in the simulator.
        host.dispatch(make_script(conn))
        await asyncio.sleep(0.1)  # let the writer drain (or kick)
        stats = host.dispatch_stats
        await host.stop()
        return stats

    return asyncio.run(main())


def run_burst_on_sim(make_script):
    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment(
        "lan", ETHERNET_10MBPS.bytes_per_sec, ETHERNET_10MBPS.latency
    )
    core = SinkCore()
    host = SimHost(kernel, network, "h", "lan", ULTRASPARC_1, flow=TINY_FLOW)
    host.set_core(core)
    peer = SimHost(kernel, network, "c", "lan", ULTRASPARC_1)
    peer.set_core(ProtocolCore())
    network.connect("c", "h")
    kernel.run()
    (conn,) = core.connected
    host.interpreter.execute(make_script(conn))
    kernel.run()
    return host.dispatch_stats


class TestFlowControlParity:
    """The flow-control counters are deterministic policy outcomes, so
    they must agree counter-for-counter across backends (the claim
    docs/flow-control.md §8 makes about outbox_coalesced/outbox_kicks)."""

    def test_coalescing_counters_match(self):
        a_stats = run_burst_on_asyncio(state_burst)
        s_stats = run_burst_on_sim(state_burst)
        assert a_stats == s_stats
        assert a_stats.outbox_coalesced == 10
        assert a_stats.outbox_kicks == 0
        assert a_stats.sends == 13 and a_stats.send_drops == 0

    def test_kick_counters_match(self):
        a_stats = run_burst_on_asyncio(update_burst)
        s_stats = run_burst_on_sim(update_burst)
        assert a_stats == s_stats
        assert a_stats.outbox_kicks == 1
        assert a_stats.outbox_coalesced == 0
        # eight pushes accepted before the overflow, four refused after
        # the kick; refusals are visible drops, never silent.
        assert a_stats.sends == 8 and a_stats.send_drops == 4
        assert a_stats.notifications == 12


class TestTimerParity:
    def test_rearm_fires_once_with_latest_delay(self, tmp_path):
        # asyncio
        async def main():
            core = TimerCore()
            host = AsyncioHost(core, MemoryNetwork())
            host.dispatch([
                StartTimer("t", 0.01),
                StartTimer("t", 0.04),
                CancelTimer("missing"),
            ])
            await asyncio.sleep(0.02)
            early = list(core.fired)
            await asyncio.sleep(0.06)
            await host.stop()
            return early, core.fired

        early, fired = asyncio.run(main())
        assert early == [] and fired == ["t"]

        # simulator
        kernel = SimKernel()
        network = SimNetwork(kernel)
        network.add_segment(
            "lan", ETHERNET_10MBPS.bytes_per_sec, ETHERNET_10MBPS.latency
        )
        host = SimHost(kernel, network, "h", "lan", ULTRASPARC_1)
        core = TimerCore()
        host.set_core(core)
        host.interpreter.execute([
            StartTimer("t", 0.01),
            StartTimer("t", 0.04),
            CancelTimer("missing"),
        ])
        kernel.run_until(0.02)
        assert core.fired == []
        kernel.run()
        assert core.fired == ["t"]
