"""Host parity: one effect script, two backends, identical semantics.

The asyncio runtime and the simulator share a single dispatch
implementation (repro.core.interpreter); these tests push the same effect
script through both and assert the observable outcomes match: dispatch
counters, notify events, recovered on-disk state, and timer behavior
(re-arm, cancel-missing).
"""

import asyncio

from repro.core.events import (
    AppendWal,
    CancelTimer,
    CreateGroupStorage,
    Notify,
    ProtocolCore,
    SendMessage,
    SendMulticast,
    ShutDown,
    StartTimer,
    TruncateWal,
    WriteCheckpoint,
)
from repro.net.memory import MemoryNetwork
from repro.runtime.host import AsyncioHost
from repro.sim.host import SimHost
from repro.sim.kernel import SimKernel
from repro.sim.network import SimNetwork
from repro.sim.profiles import ETHERNET_10MBPS, ULTRASPARC_1
from repro.storage.store import GroupStore
from repro.wire.messages import Ack


def effect_script():
    """The ISSUE's parity script: re-arm, cancel-missing, dead-conn sends,
    the WAL lifecycle, a notification, and shutdown."""
    return [
        StartTimer("t", 5.0),
        StartTimer("t", 9.0),            # re-arm: one pending firing
        CancelTimer("missing"),          # cancel-missing: no-op
        SendMessage(99, Ack(1)),         # dead connection: counted drop
        SendMulticast((98, 99), Ack(2)),  # all receivers dead
        CreateGroupStorage("g", b"meta"),
        AppendWal("g", 0, b"rec-0"),
        AppendWal("g", 1, b"rec-1"),
        WriteCheckpoint("g", 1, b"snap"),
        TruncateWal("g", 1),             # already rotated by checkpoint
        Notify("parity", 7),
        ShutDown("script done"),
    ]


class TimerCore(ProtocolCore):
    def __init__(self):
        super().__init__()
        self.fired = []

    def handle_timer(self, key):
        self.fired.append(key)


def run_script_on_asyncio(tmp_path):
    events = []

    async def main():
        host = AsyncioHost(
            TimerCore(), MemoryNetwork(), store=GroupStore(tmp_path)
        )
        host.on_notify(lambda kind, payload: events.append((kind, payload)))
        host.dispatch(effect_script())
        await host.wait_stopped()
        host.store.close()
        return host

    host = asyncio.run(main())
    return host.dispatch_stats, events, GroupStore(tmp_path).recover("g")


def run_script_on_sim(tmp_path):
    kernel = SimKernel()
    network = SimNetwork(kernel)
    network.add_segment(
        "lan", ETHERNET_10MBPS.bytes_per_sec, ETHERNET_10MBPS.latency
    )
    host = SimHost(
        kernel, network, "h", "lan", ULTRASPARC_1, store=GroupStore(tmp_path)
    )
    host.set_core(TimerCore())
    events = []
    host.on_notify(lambda kind, payload: events.append((kind, payload)))
    host.interpreter.execute(effect_script())
    kernel.run()
    return host.dispatch_stats, events, GroupStore(tmp_path).recover("g")


class TestEffectScriptParity:
    def test_identical_outcomes_on_both_backends(self, tmp_path):
        a_stats, a_events, a_rec = run_script_on_asyncio(tmp_path / "a")
        s_stats, s_events, s_rec = run_script_on_sim(tmp_path / "s")

        # DispatchStats is a dataclass: one comparison covers every counter.
        assert a_stats == s_stats
        assert a_events == s_events == [("parity", 7)]
        assert (a_rec.meta, a_rec.checkpoint_seqno, a_rec.snapshot, a_rec.records) \
            == (s_rec.meta, s_rec.checkpoint_seqno, s_rec.snapshot, s_rec.records)

    def test_script_counters_match_the_contract(self, tmp_path):
        stats, _events, recovered = run_script_on_sim(tmp_path)
        assert stats.timers_started == 2
        assert stats.timers_cancelled == 1
        assert stats.sends == 0 and stats.send_drops == 1
        assert stats.multicast_fanout == 0 and stats.multicast_drops == 2
        assert stats.storage_creates == 1
        assert stats.wal_appends == 2
        assert stats.checkpoints == 1
        assert stats.wal_truncates == 1
        assert stats.notifications == 1
        assert stats.shutdowns == 1
        # checkpoint rotated the WAL, so TruncateWal had nothing left to do
        assert recovered.checkpoint_seqno == 1
        assert recovered.snapshot == b"snap"
        assert recovered.records == []


class TestTimerParity:
    def test_rearm_fires_once_with_latest_delay(self, tmp_path):
        # asyncio
        async def main():
            core = TimerCore()
            host = AsyncioHost(core, MemoryNetwork())
            host.dispatch([
                StartTimer("t", 0.01),
                StartTimer("t", 0.04),
                CancelTimer("missing"),
            ])
            await asyncio.sleep(0.02)
            early = list(core.fired)
            await asyncio.sleep(0.06)
            await host.stop()
            return early, core.fired

        early, fired = asyncio.run(main())
        assert early == [] and fired == ["t"]

        # simulator
        kernel = SimKernel()
        network = SimNetwork(kernel)
        network.add_segment(
            "lan", ETHERNET_10MBPS.bytes_per_sec, ETHERNET_10MBPS.latency
        )
        host = SimHost(kernel, network, "h", "lan", ULTRASPARC_1)
        core = TimerCore()
        host.set_core(core)
        host.interpreter.execute([
            StartTimer("t", 0.01),
            StartTimer("t", 0.04),
            CancelTimer("missing"),
        ])
        kernel.run_until(0.02)
        assert core.fired == []
        kernel.run()
        assert core.fired == ["t"]
