"""Live migration on the asyncio runtime, plus the epoch fence.

The sim chaos suite (``tests/sim/test_migration_chaos.py``) exercises
the crash interleavings deterministically; this file pins down the
asyncio side of the same contract over real TCP:

* the commit path — lease and epoch move, delivery resumes on the new
  owner, the source forgets the group;
* the WAL segment handoff — after a migration the *destination's* store
  recovers the group across a crash-restart;
* unwinding — migrating a group that does not exist fails cleanly and
  leaves routing untouched;
* the fence — a command stamped with a stale epoch is rejected with
  ``corona.stale_epoch`` instead of being served by a non-owner, and
  epochs only ever go up.
"""

import asyncio

from repro.core.server import ServerConfig
from repro.net.tcp import TcpTransport
from repro.runtime.client import CoronaClient
from repro.runtime.shard import ShardedHost
from repro.sim.harness import CoronaWorld
from repro.wire.messages import BcastUpdateRequest

SHARDS = 3


async def _wait_idle(host, timeout=5.0):
    """Wait until no migration is in flight on the front loop."""
    deadline = asyncio.get_running_loop().time() + timeout
    while host.sessions.migrations():
        assert asyncio.get_running_loop().time() < deadline, (
            "migration did not settle", host.sessions.migrations(),
        )
        await asyncio.sleep(0.01)


class TestAsyncioMigration:
    def test_commit_path_and_wal_handoff(self, tmp_path):
        async def main():
            host = ShardedHost(
                ServerConfig(server_id="server"),
                TcpTransport(),
                shards=SHARDS,
                store_root=tmp_path,
            )
            address = await host.listen(("127.0.0.1", 0))
            alice = await CoronaClient.connect(address, "alice")
            bob = await CoronaClient.connect(address, "bob")
            group = "mig-live"
            await alice.create_group(group, persistent=True)
            await alice.join_group(group)
            await bob.join_group(group)
            deliveries = []
            bob.on_event(
                "delivery", lambda ev: deliveries.append(ev.record.data)
            )
            await alice.bcast_state(group, "doc", b"base")
            for i in range(3):
                await alice.bcast_update(group, "doc", b"+%d" % i)

            src = host.router.route(group)
            dst = (src + 1) % SHARDS
            host.migrate_group(group, dst)
            await _wait_idle(host)

            # lease and epoch moved exactly once; the runtime moved cores
            assert host.router.route(group) == dst
            assert host.router.lease(group) == dst
            assert host.router.epoch(group) == 1
            assert group in host.workers[dst].core.runtimes
            assert group not in host.workers[src].core.runtimes
            record = host.sessions.migration_log[-1]
            assert record.outcome == "committed"
            assert record.src == src and record.dst == dst
            assert record.bytes > 0
            assert host.dispatch_stats.migrations_out == 1
            assert host.dispatch_stats.migrations_in == 1

            # delivery resumes on the new owner, same stream
            await alice.bcast_update(group, "doc", b"after-migrate")
            await asyncio.sleep(0.05)
            assert deliveries[-1] == b"after-migrate"

            # WAL handoff: the destination's own store now recovers the
            # group across a crash-restart (epoch intact, log intact)
            tip = host.workers[dst].core.runtimes[group].group.log.next_seqno
            host.restart_shard(dst)
            await asyncio.sleep(0.05)
            assert host.router.route(group) == dst
            assert host.router.epoch(group) == 1
            recovered = host.workers[dst].core.runtimes[group]
            assert recovered.group.log.next_seqno == tip
            # sessions were lost in the crash: re-join, then resume
            await alice.join_group(group)
            await alice.bcast_update(group, "doc", b"after-crash")

            await alice.close()
            await bob.close()
            await host.stop()

        asyncio.run(main())

    def test_migrating_missing_group_fails_cleanly(self, tmp_path):
        async def main():
            host = ShardedHost(
                ServerConfig(server_id="server"),
                TcpTransport(),
                shards=SHARDS,
                store_root=tmp_path,
            )
            await host.listen(("127.0.0.1", 0))
            ghost = "never-created"
            src = host.router.route(ghost)
            host.migrate_group(ghost, (src + 1) % SHARDS)
            await _wait_idle(host)
            assert host.router.route(ghost) == src
            assert host.router.lease(ghost) is None
            assert host.router.epoch(ghost) == 0
            assert host.sessions.migration_log[-1].outcome == "failed"
            await host.stop()

        asyncio.run(main())

    def test_epochs_are_monotonic_across_migrations(self, tmp_path):
        async def main():
            host = ShardedHost(
                ServerConfig(server_id="server"),
                TcpTransport(),
                shards=SHARDS,
                store_root=tmp_path,
            )
            address = await host.listen(("127.0.0.1", 0))
            alice = await CoronaClient.connect(address, "alice")
            group = "mig-ring"
            await alice.create_group(group, persistent=True)
            await alice.join_group(group)
            seen = [host.router.epoch(group)]
            for hop in range(1, 4):
                dst = (host.router.route(group) + 1) % SHARDS
                host.migrate_group(group, dst)
                await _wait_idle(host)
                assert host.router.route(group) == dst
                seen.append(host.router.epoch(group))
            assert seen == [0, 1, 2, 3]
            await alice.close()
            await host.stop()

        asyncio.run(main())


class TestEpochFence:
    def test_stale_epoch_command_is_rejected(self):
        """A command stamped before a migration must not be served by
        the new owner at face value: the fence rejects it with
        ``corona.stale_epoch`` and counts the reject."""
        world = CoronaWorld()
        server = world.add_sharded_server(shards=SHARDS)
        alice = world.add_client(client_id="alice")
        world.run()
        group = "fence-0"
        created = alice.call("create_group", group, False)
        world.run()
        assert created.ok
        joined = alice.call("join_group", group)
        world.run()
        assert joined.ok
        host = server.host
        dst = (host.router.route(group) + 1) % SHARDS
        host.migrate_group(group, dst)
        world.run()
        assert host.router.epoch(group) == 1
        # replay a command carrying the pre-migration epoch stamp
        # directly into the new owner's mailbox
        conn = host.sessions._client_conn["alice"]
        stale = BcastUpdateRequest(
            request_id=999_001, group=group, object_id="doc", data=b"stale"
        )
        before = host.dispatch_stats.stale_epoch_rejects
        host._post_item(dst, ("message", conn, stale, 0))
        world.run()
        assert host.dispatch_stats.stale_epoch_rejects == before + 1
        # decisively: the stale command was NOT applied by the new owner
        log = host.workers[dst].core.runtimes[group].group.log
        assert all(rec.data != b"stale" for rec in log.records())
        # while a current-epoch command still flows
        sent = alice.call("bcast_update", group, "doc", b"fresh")
        world.run()
        assert sent.ok
        assert any(rec.data == b"fresh" for rec in log.records())
