"""Optimistic-scheduler parity: serial vs parallel, sim vs asyncio.

The dependency-aware scheduler (``repro.core.scheduler``) promises that
enabling ``exec_lanes`` changes *when* work happens, never *what* the
service outputs.  One single-sender blast (overlapping object ids, so
real conflicts occur) is driven through three configurations:

* sim, ``exec_lanes=0`` — the strict-serial reference;
* sim, ``exec_lanes=4`` — optimistic windows on modeled CPU lanes;
* asyncio, ``exec_lanes=4`` — real thread-pool execution, pipelined
  requests over TCP.

Every member's delivery stream and the recovered per-shard storage must
be byte-identical across all three.  A fixed core clock pins the
timestamps that land in records and on disk, and the single sender pins
the arrival (and therefore sequencing) order on every backend.
"""

import asyncio

from repro.core.server import ServerConfig
from repro.net.tcp import TcpTransport
from repro.runtime.client import CoronaClient
from repro.runtime.shard import ShardedHost
from repro.sim.harness import CoronaWorld
from repro.storage.store import GroupStore

N = 24
LANES = 4


class FixedClock:
    def now(self) -> float:
        return 321.5


def _object_id(i):
    # three hot objects -> plenty of same-window collisions
    return f"obj{i % 3}"


def _recover(root):
    store = GroupStore(root / "shard0")
    groups = store.recover_all()
    store.close()
    return {
        name: (rec.meta, rec.checkpoint_seqno, rec.snapshot, rec.records)
        for name, rec in groups.items()
    }


def _drive_sim(root, exec_lanes):
    world = CoronaWorld()
    server = world.add_sharded_server(
        config=ServerConfig(server_id="server", exec_lanes=exec_lanes),
        shards=1,
        store_root=root,
        core_clock=FixedClock(),
    )
    alice = world.add_client(client_id="alice")
    bob = world.add_client(client_id="bob")
    world.run()
    create = alice.call("create_group", "hot", True)
    world.run()
    assert create.ok, create.error
    for client in (alice, bob):
        join = client.call("join_group", "hot")
        world.run()
        assert join.ok, join.error
    # one virtual instant: the client's CPU lane serializes the sends in
    # schedule order, so arrival order is identical on every config
    start = world.now + 1.0
    for i in range(N):
        alice.at(start, "bcast_update", "hot", _object_id(i), bytes([i]))
    world.run()
    streams = tuple(
        tuple(
            (ev.record.seqno, ev.record.object_id, ev.record.data)
            for _, ev in client.deliveries
        )
        for client in (alice, bob)
    )
    stats = server.host.dispatch_stats
    for worker in server.host.workers:
        if worker.store is not None:
            worker.store.close()
    return streams, stats


def _drive_asyncio(root):
    async def main():
        host = ShardedHost(
            ServerConfig(server_id="server", exec_lanes=LANES),
            TcpTransport(),
            shards=1,
            store_root=root,
            core_clock=FixedClock(),
        )
        address = await host.listen(("127.0.0.1", 0))
        alice = await CoronaClient.connect(address, "alice")
        bob = await CoronaClient.connect(address, "bob")
        await alice.create_group("hot", True)
        view = await alice.join_group("hot")
        await bob.join_group("hot")
        # pipelined: every request is written before any ack returns, so
        # the worker's mailbox drain forms real multi-command windows
        await asyncio.gather(*[
            alice.bcast_update("hot", _object_id(i), bytes([i]))
            for i in range(N)
        ])
        await asyncio.sleep(0.3)  # drain fan-out + async WAL appends
        stats = host.dispatch_stats
        state = view.state.materialize_all()
        await alice.close()
        await bob.close()
        await host.stop()
        return state, stats

    return asyncio.run(main())


class TestSchedulerParity:
    def test_parallel_sim_output_equals_serial(self, tmp_path):
        serial_streams, serial_stats = _drive_sim(tmp_path / "s", 0)
        parallel_streams, parallel_stats = _drive_sim(tmp_path / "p", LANES)

        assert parallel_streams == serial_streams
        assert all(len(s) == N for s in serial_streams)
        assert _recover(tmp_path / "p") == _recover(tmp_path / "s")

        # serial config never speculates
        assert serial_stats.commands_parallel == 0
        assert serial_stats.conflicts == serial_stats.reexecutions == 0
        # the parallel config actually did: windows formed, the object
        # overlap produced conflicts, every conflict re-executed
        assert parallel_stats.commands_parallel > 0
        assert parallel_stats.conflicts > 0
        assert parallel_stats.reexecutions == parallel_stats.conflicts

    def test_parallel_sim_is_deterministic(self, tmp_path):
        first = _drive_sim(tmp_path / "one", LANES)
        second = _drive_sim(tmp_path / "two", LANES)
        assert first == second
        assert _recover(tmp_path / "one") == _recover(tmp_path / "two")

    def test_asyncio_parallel_storage_matches_serial_sim(self, tmp_path):
        _streams, _stats = _drive_sim(tmp_path / "sim", 0)
        state, stats = _drive_asyncio(tmp_path / "aio")

        # byte-identical WAL: same records, same seqnos, same payloads
        assert _recover(tmp_path / "aio") == _recover(tmp_path / "sim")
        # the client-side mirror converged to the same final state
        sim_final = {}
        for seqno, object_id, data in _streams[0]:
            sim_final.setdefault(object_id, []).append(data)
        materialized = {s.object_id: s.data for s in state}
        assert materialized == {
            oid: b"".join(parts) for oid, parts in sim_final.items()
        }
        # whatever windows real timing formed, invariants hold
        assert stats.reexecutions == stats.conflicts
