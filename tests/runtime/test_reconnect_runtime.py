"""Reconnection over the asyncio runtime: the server restarts, the
auto-reconnect client resynchronizes from stable storage."""

import asyncio

from repro.net.memory import MemoryNetwork
from repro.runtime import CoronaClient, CoronaServer
from repro.storage.store import GroupStore


def test_client_survives_server_restart(tmp_path):
    async def main():
        net = MemoryNetwork()
        server = CoronaServer(store=GroupStore(tmp_path / "d"), transport=net)
        await server.start("corona", 0)

        client = await CoronaClient.connect(
            ("corona", 0), "resilient", transport=net,
            auto_reconnect=True, reconnect_backoff=0.05,
        )
        await client.create_group("g", persistent=True)
        await client.join_group("g")
        await client.bcast_update("g", "doc", b"pre;")

        dropped = asyncio.Event()
        rejoined = asyncio.Event()
        client.on_event("disconnected", lambda _p: dropped.set())
        client.on_event("rejoined", lambda _v: rejoined.set())

        await server.stop()
        await asyncio.wait_for(dropped.wait(), 5)

        # restart on the same address, recovering the group from disk
        server2 = CoronaServer(store=GroupStore(tmp_path / "d"), transport=net)
        await server2.start("corona", 0)
        await asyncio.wait_for(rejoined.wait(), 10)

        assert client.view("g").state.get("doc").materialized() == b"pre;"
        await client.bcast_update("g", "doc", b"post;")
        await asyncio.sleep(0.1)
        assert client.view("g").state.get("doc").materialized() == b"pre;post;"

        await client.close()
        await server2.stop()

    asyncio.run(main())


def test_reconnect_is_opt_in(tmp_path):
    async def main():
        net = MemoryNetwork()
        server = CoronaServer(transport=net)
        await server.start("corona", 0)
        client = await CoronaClient.connect(("corona", 0), "plain", transport=net)
        dropped = asyncio.Event()
        client.on_event("disconnected", lambda _p: dropped.set())
        await server.stop()
        await asyncio.wait_for(dropped.wait(), 5)
        await asyncio.sleep(0.3)
        assert not client.core.connected  # no redial attempts
        await client.close()

    asyncio.run(main())
