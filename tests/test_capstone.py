"""Capstone soak test: every subsystem at once.

A replicated, authenticated, multicast-enabled deployment suffers a
double failure (a replica *and* the coordinator) while clients with
server-failover reconnection keep collaborating.  Asserts the end-to-end
contract: every acknowledged update survives, in order, everywhere.
"""

import pytest

from repro.core.auth import TokenAuthenticator
from repro.sim.harness import CoronaWorld


TOKENS = {"writer": "w-secret", "reader": "r-secret"}


@pytest.fixture
def deployment():
    world = CoronaWorld()
    cluster = world.add_replicated_cluster(
        4, heartbeat_interval=0.4, suspicion_timeout=1.0
    )
    for server in cluster:
        server.core.config.authenticator = TokenAuthenticator(
            dict(TOKENS), allow_unregistered=False
        )
        server.core.config.use_multicast = True
    world.run_for(1.0)
    return world, cluster


def test_full_stack_soak(deployment):
    world, cluster = deployment

    # clients with failover reconnection, pointed at different servers
    writer = world.add_client(
        client_id="writer", server="srv-1", token="w-secret",
        auto_reconnect=True, reconnect_backoff=0.3,
        fallback_addresses=("srv-3",),
    )
    reader = world.add_client(
        client_id="reader", server="srv-2", token="r-secret",
        auto_reconnect=True, reconnect_backoff=0.3,
        fallback_addresses=("srv-3",),
    )
    intruder = world.add_client(client_id="intruder", server="srv-1", token="nope")
    world.run_for(1.0)
    assert writer.core.connected and reader.core.connected
    assert not intruder.core.connected  # authentication held

    writer.call("create_group", "journal", True)
    world.run_for(0.5)
    writer.call("join_group", "journal")
    reader.call("join_group", "journal", notify_membership=True)
    world.run_for(1.0)

    acknowledged = []

    def publish(tag):
        payload = f"{tag};".encode()
        call = writer.call("bcast_update", "journal", "log", payload)
        world.run_for(2.0)
        if call.done and call.ok:
            acknowledged.append(payload)
        return call

    publish("calm-1")
    publish("calm-2")

    # --- catastrophe: the writer's replica AND the coordinator die ---------
    cluster[1].host.crash()   # writer's own server
    cluster[0].host.crash()   # the coordinator
    world.run_for(8.0)        # election + reconnect window

    # the writer failed over to srv-3 and rejoined
    assert writer.core.connected
    assert writer.events_of_kind("rejoined")

    # publishing resumes (retry until the new regime accepts)
    for attempt in range(10):
        call = publish(f"post-crash-{attempt}")
        if call.done and call.ok:
            break
    assert acknowledged[-1].startswith(b"post-crash")

    publish("steady-again")
    world.run_for(4.0)

    expected = b"".join(acknowledged)
    for client in (writer, reader):
        view = client.core.views["journal"]
        assert view.state.get("log").materialized() == expected

    # exactly one coordinator among the survivors, and it is the rightful
    # successor (srv-2, since srv-0 and srv-1 died)
    alive = [s for s in cluster if s.host.alive]
    coordinators = [s.core.server_id for s in alive if s.core.is_coordinator]
    assert coordinators == ["srv-2"]

    # membership reflects reality
    reply = writer.call("get_membership", "journal")
    world.run_for(1.0)
    assert sorted(m.client_id for m in reply.value) == ["reader", "writer"]

    # every surviving state holder converged byte-for-byte
    states = {
        s.core.groups["journal"].state.get("log").materialized()
        for s in alive
        if "journal" in s.core.groups and "log" in s.core.groups["journal"].state
    }
    assert states == {expected}
