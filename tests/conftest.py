"""Suite-wide fixtures: ordering + happens-before checks on every sim run.

Every :class:`~repro.sim.harness.CoronaWorld` a test builds is forced
into tracing mode, and when the test finishes its trace is replayed
through :func:`repro.analysis.tracecheck.check_world` — so each sim-based
test doubles as an independent verification of the paper's §4.1 ordering
contract (partitioned worlds are exempt; see ``docs/static-analysis.md``).

Sharded servers additionally get a :class:`RaceRecorder` injected (unless
the test passed its own) and their mailbox/WAL/frame trace is replayed
through the vector-clock checker at teardown — every sharded sim test is
also a happens-before race check.
"""

from __future__ import annotations

import pytest

from repro.analysis.findings import format_findings
from repro.analysis.racecheck import RaceRecorder, check_race_trace
from repro.analysis.tracecheck import check_world
from repro.sim import harness


@pytest.fixture(autouse=True)
def tracecheck_sim_worlds(monkeypatch, request):
    """Trace every CoronaWorld and verify ordering invariants at teardown."""
    worlds: list[harness.CoronaWorld] = []
    original_init = harness.CoronaWorld.__init__

    def traced_init(self, *args, **kwargs):
        kwargs.setdefault("trace", True)
        original_init(self, *args, **kwargs)
        worlds.append(self)

    monkeypatch.setattr(harness.CoronaWorld, "__init__", traced_init)
    yield worlds
    for world in worlds:
        findings = check_world(world, name=f"{request.node.name}:sim-trace")
        if findings:
            pytest.fail(
                "tracecheck: ordering invariants violated in sim trace\n"
                + format_findings(findings),
                pytrace=False,
            )


@pytest.fixture(autouse=True)
def racecheck_sharded_worlds(monkeypatch, request):
    """Instrument every sharded sim server and race-check it at teardown."""
    recorders: list[RaceRecorder] = []
    original = harness.CoronaWorld.add_sharded_server

    def instrumented(self, *args, **kwargs):
        if kwargs.get("race_recorder") is None:
            kwargs["race_recorder"] = RaceRecorder()
            recorders.append(kwargs["race_recorder"])
        return original(self, *args, **kwargs)

    monkeypatch.setattr(harness.CoronaWorld, "add_sharded_server", instrumented)
    yield recorders
    for recorder in recorders:
        findings = check_race_trace(
            recorder.events(), name=f"{request.node.name}:race-trace"
        )
        if findings:
            pytest.fail(
                "racecheck: unordered shared-state accesses in sharded run\n"
                + format_findings(findings),
                pytrace=False,
            )
