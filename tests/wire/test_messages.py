"""Round-trip coverage for every message in the wire catalogue."""

import dataclasses

import pytest

from repro.wire import codec, messages as m

_SNAPSHOT = m.StateSnapshot(
    group="g",
    base_seqno=4,
    objects=(m.ObjectState("o1", b"abc"), m.ObjectState("o2", b"")),
    updates=(m.UpdateRecord(5, m.UpdateKind.UPDATE, "o1", b"+d", "c1", 12.5),),
    next_seqno=6,
)

_SERVERS = (
    m.ServerInfo("s1", "hostA", 7000),
    m.ServerInfo("s2", "hostB", 7001),
)

_EXAMPLES = [
    m.ObjectState("obj", b"\x00\xffdata"),
    m.UpdateRecord(0, m.UpdateKind.STATE, "obj", b"s", "client-1", 0.0),
    m.MemberInfo("client-1", m.MemberRole.OBSERVER),
    m.GroupInfo("g", True, 3, 17),
    m.TransferSpec(m.TransferPolicy.SELECTED, 0, ("o1", "o2"), -1),
    m.ServerInfo("s1", "localhost", 9000),
    m.GroupMeta("g", True, (m.ObjectState("o", b"init"),), 17.25),
    _SNAPSHOT,
    m.Hello("client-1"),
    m.CreateGroupRequest(1, "g", True, (m.ObjectState("o", b"init"),)),
    m.DeleteGroupRequest(2, "g"),
    m.JoinGroupRequest(3, "g", m.MemberRole.PRINCIPAL, m.TransferSpec(), True),
    m.LeaveGroupRequest(4, "g"),
    m.GetMembershipRequest(5, "g"),
    m.ListGroupsRequest(6),
    m.BcastStateRequest(7, "g", "o", b"new", m.DeliveryMode.EXCLUSIVE),
    m.BcastUpdateRequest(8, "g", "o", b"+x", m.DeliveryMode.INCLUSIVE),
    m.AcquireLockRequest(9, "g", "o", False),
    m.ReleaseLockRequest(10, "g", "o"),
    m.ReduceLogRequest(11, "g"),
    m.PingRequest(12),
    m.ChunkAck("g", 7, 8192),
    m.TransferResume(13, "g", 7, 8192, 41),
    m.StateChunk("g", 7, 8192, b"\x01\x02payload", 131072, False),
    m.HelloReply("server-1"),
    m.Ack(1),
    m.ErrorReply(2, "corona.no_such_group", "g does not exist"),
    m.JoinReply(3, _SNAPSHOT, (m.MemberInfo("c", m.MemberRole.PRINCIPAL),)),
    m.MembershipReply(5, "g", ()),
    m.GroupListReply(6, (m.GroupInfo("g", False, 1, 0),)),
    m.Delivery("g", m.UpdateRecord(9, m.UpdateKind.UPDATE, "o", b"u", "c", 3.0)),
    m.Delivery(
        "g", m.UpdateRecord(9, m.UpdateKind.STATE, "o", b"s", "c", 3.0),
        skipped=(7, 8),
    ),
    m.Disconnect(m.DisconnectReason.SLOW_CONSUMER, "send queue overflow"),
    m.MembershipNotice(
        "g",
        joined=(m.MemberInfo("c2", m.MemberRole.PRINCIPAL),),
        left=(),
        members=(m.MemberInfo("c2", m.MemberRole.PRINCIPAL),),
    ),
    m.GroupDeletedNotice("g"),
    m.LockGranted(9, "g", "o"),
    m.PingReply(12, 99.25),
    m.ServerHello(m.ServerInfo("s2", "h", 1), 3),
    m.ServerHelloReply("s1", 3, _SERVERS, 2),
    m.ForwardBcast(1, "s2", "g", m.UpdateKind.UPDATE, "o", b"u", "c", m.DeliveryMode.INCLUSIVE, 5.0),
    m.SequencedBcast("g", m.UpdateRecord(3, m.UpdateKind.STATE, "o", b"s", "c", 5.0), "s2", 1, m.DeliveryMode.INCLUSIVE),
    m.GroupInterest("s2", "g", True, 4),
    m.StateFetchRequest(1, "g", 10),
    m.StateFetchReply(1, True, _SNAPSHOT),
    m.StateFetchReply(1, False, None),
    m.Heartbeat("s1", 42, 3),
    m.HeartbeatAck("s2", 42, 3),
    m.ServerListUpdate(_SERVERS, 5, 3),
    m.ElectionRequest("s2", 4),
    m.ElectionReply("s3", 4, True),
    m.CoordinatorAnnounce("s2", 4, _SERVERS, 6),
    m.BackupAssign("g", "s3"),
    m.ReconcileOffer("g", "branch-a", 10, 25, 12),
    m.ReconcileChoice("g", m.ReconcilePolicy.ADOPT_ONE, "branch-a", 12),
    m.ForwardCreateGroup(1, "s2", "g", True, (m.ObjectState("o", b"i"),)),
    m.ForwardDeleteGroup(2, "s2", "g"),
    m.ForwardReduceLog(3, "s2", "g"),
    m.ForwardOutcome(1, False, "corona.group_exists", "dup"),
    m.GroupCreated("g", True, (), 2.0),
    m.GroupDropped("g"),
    m.MemberUpdate("s2", "g", (m.MemberInfo("c", m.MemberRole.PRINCIPAL),), ()),
    m.GroupMembership("g", (), (m.MemberInfo("c", m.MemberRole.PRINCIPAL),), ()),
    m.ReduceOrder("g", 41),
    m.ForwardAcquireLock(4, "s2", "g", "o", "c", 9, True),
    m.ForwardReleaseLock(5, "s2", "g", "o", "c"),
    m.RemoteLockGrant("g", "o", "c", 9),
    m.GroupRebase("g", _SNAPSHOT),
    m.GroupForked("g", "g~s2#e3"),
    m.RebaseNotice("g", _SNAPSHOT),
    m.ForkNotice("g", "g~s2#e3"),
]


@pytest.mark.parametrize("message", _EXAMPLES, ids=lambda x: type(x).__name__)
def test_message_roundtrip(message):
    assert codec.decode(codec.encode(message)) == message


def test_every_concrete_message_class_is_exercised():
    """Guards the example list against new messages lacking coverage."""
    covered = {type(x) for x in _EXAMPLES}
    catalogue = {
        obj
        for name in m.__all__
        if isinstance(obj := getattr(m, name), type)
        and dataclasses.is_dataclass(obj)
        and obj is not m.Message
    }
    assert catalogue <= covered, f"uncovered: {catalogue - covered}"


def test_messages_are_immutable():
    msg = m.Ack(1)
    with pytest.raises(dataclasses.FrozenInstanceError):
        msg.request_id = 2  # type: ignore[misc]


def test_default_transfer_spec_is_full():
    req = m.JoinGroupRequest(1, "g")
    assert req.transfer.policy is m.TransferPolicy.FULL


def test_encoding_is_deterministic():
    a = codec.encode(_SNAPSHOT)
    b = codec.encode(_SNAPSHOT)
    assert a == b
