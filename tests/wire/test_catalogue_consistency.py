"""Consistency checks tying the message catalogue to its documentation:
type-code partitions, naming conventions, request/reply pairing."""

import dataclasses

from repro.wire import codec, messages as m

_CATALOGUE = {
    name: obj
    for name in m.__all__
    if isinstance(obj := getattr(m, name), type)
    and dataclasses.is_dataclass(obj)
    and obj is not m.Message
}


def _code(cls):
    return codec.type_code_of(cls)


CLIENT_TO_SERVER = {
    m.Hello, m.CreateGroupRequest, m.DeleteGroupRequest, m.JoinGroupRequest,
    m.LeaveGroupRequest, m.GetMembershipRequest, m.ListGroupsRequest,
    m.BcastStateRequest, m.BcastUpdateRequest, m.AcquireLockRequest,
    m.ReleaseLockRequest, m.ReduceLogRequest, m.PingRequest,
    m.ChunkAck, m.TransferResume,
}

SERVER_TO_CLIENT = {
    m.HelloReply, m.Ack, m.ErrorReply, m.JoinReply, m.MembershipReply,
    m.GroupListReply, m.Delivery, m.MembershipNotice, m.GroupDeletedNotice,
    m.LockGranted, m.PingReply, m.RebaseNotice, m.ForkNotice, m.Disconnect,
    m.StateChunk,
}


def test_type_code_partitions_match_protocol_doc():
    """docs/protocol.md §2: structs 1-19, c->s 20-49, s->c 50-79,
    s<->s 80-119."""
    for cls in CLIENT_TO_SERVER:
        assert 20 <= _code(cls) <= 49, cls.__name__
    for cls in SERVER_TO_CLIENT:
        assert 50 <= _code(cls) <= 79, cls.__name__
    inter_server = set(_CATALOGUE.values()) - CLIENT_TO_SERVER - SERVER_TO_CLIENT
    for cls in inter_server:
        code = _code(cls)
        assert 1 <= code <= 19 or 80 <= code <= 119, (
            f"{cls.__name__} has code {code} outside struct/server ranges"
        )


def test_every_catalogued_class_is_registered():
    for name, cls in _CATALOGUE.items():
        assert codec.class_for_code(_code(cls)) is cls, name


def test_requests_carry_request_ids():
    # Hello opens the session; ChunkAck is an unsolicited flow-control
    # signal — neither expects a paired reply.
    for cls in CLIENT_TO_SERVER - {m.Hello, m.ChunkAck}:
        fields = {f.name for f in dataclasses.fields(cls)}
        assert "request_id" in fields, cls.__name__


def test_replies_echo_request_ids():
    for cls in (m.Ack, m.ErrorReply, m.JoinReply, m.MembershipReply,
                m.GroupListReply, m.LockGranted, m.PingReply):
        fields = {f.name for f in dataclasses.fields(cls)}
        assert "request_id" in fields, cls.__name__


def test_unsolicited_messages_have_no_request_id():
    for cls in (m.Delivery, m.MembershipNotice, m.GroupDeletedNotice,
                m.RebaseNotice, m.ForkNotice, m.Disconnect, m.StateChunk,
                m.ChunkAck):
        fields = {f.name for f in dataclasses.fields(cls)}
        assert "request_id" not in fields, cls.__name__


def test_all_messages_are_frozen():
    for name, cls in _CATALOGUE.items():
        params = cls.__dataclass_params__
        assert params.frozen, f"{name} must be immutable"


def test_public_api_imports():
    import repro

    for name in repro.__all__:
        assert getattr(repro, name) is not None
