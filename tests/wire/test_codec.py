"""Unit and property tests for the binary codec primitives."""

from dataclasses import dataclass

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import CodecError
from repro.wire import codec
from repro.wire.codec import Reader, Writer


class TestVarints:
    @pytest.mark.parametrize("value", [0, 1, 127, 128, 300, 2**32, 2**63])
    def test_uvarint_roundtrip(self, value):
        w = Writer()
        w.write_uvarint(value)
        assert Reader(w.getvalue()).read_uvarint() == value

    def test_uvarint_rejects_negative(self):
        with pytest.raises(CodecError):
            Writer().write_uvarint(-1)

    def test_uvarint_compactness(self):
        w = Writer()
        w.write_uvarint(127)
        assert len(w) == 1
        w2 = Writer()
        w2.write_uvarint(128)
        assert len(w2) == 2

    @pytest.mark.parametrize("value", [0, -1, 1, -64, 64, -(2**40), 2**40])
    def test_varint_roundtrip(self, value):
        w = Writer()
        w.write_varint(value)
        assert Reader(w.getvalue()).read_varint() == value

    @given(st.integers(min_value=0, max_value=2**64))
    def test_uvarint_roundtrip_property(self, value):
        w = Writer()
        w.write_uvarint(value)
        r = Reader(w.getvalue())
        assert r.read_uvarint() == value
        assert r.at_end()

    @given(st.integers(min_value=-(2**63), max_value=2**63))
    def test_varint_roundtrip_property(self, value):
        w = Writer()
        w.write_varint(value)
        assert Reader(w.getvalue()).read_varint() == value

    def test_truncated_varint_raises(self):
        with pytest.raises(CodecError):
            Reader(b"\x80").read_uvarint()

    def test_overlong_varint_raises(self):
        with pytest.raises(CodecError):
            Reader(b"\xff" * 12).read_uvarint()


class TestPrimitives:
    @given(st.binary(max_size=512))
    def test_bytes_roundtrip(self, data):
        w = Writer()
        w.write_bytes(data)
        assert Reader(w.getvalue()).read_bytes() == data

    @given(st.text(max_size=256))
    def test_str_roundtrip(self, text):
        w = Writer()
        w.write_str(text)
        assert Reader(w.getvalue()).read_str() == text

    @given(st.floats(allow_nan=False))
    def test_double_roundtrip(self, value):
        w = Writer()
        w.write_double(value)
        assert Reader(w.getvalue()).read_double() == value

    @given(st.booleans())
    def test_bool_roundtrip(self, value):
        w = Writer()
        w.write_bool(value)
        assert Reader(w.getvalue()).read_bool() is value

    def test_invalid_utf8_raises(self):
        w = Writer()
        w.write_bytes(b"\xff\xfe")
        with pytest.raises(CodecError):
            Reader(w.getvalue()).read_str()

    def test_truncated_bytes_raises(self):
        w = Writer()
        w.write_bytes(b"hello")
        data = w.getvalue()[:-2]
        with pytest.raises(CodecError):
            Reader(data).read_bytes()


@codec.register(900)
@dataclass(frozen=True)
class _Inner:
    name: str
    value: int


@codec.register(901)
@dataclass(frozen=True)
class _Outer:
    flag: bool
    items: tuple[int, ...]
    mapping: dict[str, bytes]
    inner: _Inner
    maybe: _Inner | None = None
    score: float = 0.0


class TestDataclassCodec:
    def test_nested_roundtrip(self):
        obj = _Outer(
            flag=True,
            items=(1, -2, 3),
            mapping={"a": b"\x00\x01", "b": b""},
            inner=_Inner("x", 42),
            maybe=_Inner("y", -1),
            score=2.5,
        )
        assert codec.decode(codec.encode(obj)) == obj

    def test_optional_none(self):
        obj = _Outer(False, (), {}, _Inner("", 0), None)
        assert codec.decode(codec.encode(obj)) == obj

    def test_encoded_size_matches_encode(self):
        obj = _Outer(True, (7,), {"k": b"v"}, _Inner("n", 1))
        assert codec.encoded_size(obj) == len(codec.encode(obj))

    def test_unknown_type_code_raises(self):
        with pytest.raises(CodecError):
            codec.decode(b"\xbf\x7f")

    def test_trailing_bytes_raises(self):
        data = codec.encode(_Inner("a", 1)) + b"\x00"
        with pytest.raises(CodecError):
            codec.decode(data)

    def test_unregistered_class_raises(self):
        @dataclass(frozen=True)
        class _Lone:
            x: int

        with pytest.raises(CodecError):
            codec.encode(_Lone(1))

    def test_duplicate_type_code_rejected(self):
        with pytest.raises(CodecError):

            @codec.register(900)
            @dataclass(frozen=True)
            class _Clash:
                x: int

    def test_non_dataclass_rejected(self):
        with pytest.raises(CodecError):
            codec.register(902)(object)

    def test_type_code_lookup(self):
        assert codec.type_code_of(_Inner) == 900
        assert codec.class_for_code(900) is _Inner
        with pytest.raises(CodecError):
            codec.class_for_code(65000)

    @given(
        st.builds(
            _Outer,
            flag=st.booleans(),
            items=st.tuples(),
            mapping=st.dictionaries(st.text(max_size=8), st.binary(max_size=16), max_size=4),
            inner=st.builds(_Inner, name=st.text(max_size=8), value=st.integers(-(2**31), 2**31)),
            maybe=st.none() | st.builds(_Inner, name=st.text(max_size=4), value=st.integers(-10, 10)),
            score=st.floats(allow_nan=False),
        )
    )
    def test_roundtrip_property(self, obj):
        assert codec.decode(codec.encode(obj)) == obj
