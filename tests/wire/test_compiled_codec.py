"""Compiled codec vs. the reference interpreter, plus the frame cache.

The reference interpreter (:func:`codec.reference_encode` /
:func:`codec.reference_decode`) is the executable specification of the
wire format; these tests pin the compiled fast path — and the per-instance
frame cache built on top of it — byte-for-byte against it, for the entire
registered catalogue and under hypothesis-generated inputs with buffer
reuse.
"""

from dataclasses import dataclass

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.wire import codec, frames
from repro.wire.codec import Reader, Writer, register
from repro.wire.framing import frame_message
from repro.wire.messages import Ack, Delivery, UpdateKind, UpdateRecord
from tests.analysis.test_wire001 import _instance_of


def _registry() -> dict[int, type]:
    return dict(codec._CODE_TO_CLASS)


# --------------------------------------------------------------------------
# differential: compiled output == reference output, whole catalogue
# --------------------------------------------------------------------------

def test_compiled_matches_reference_for_every_registered_type():
    registry = _registry()
    assert len(registry) > 30, "catalogue unexpectedly small"
    for code in sorted(registry):
        cls = registry[code]
        obj = _instance_of(cls)
        ref = codec.reference_encode(obj)
        assert codec.encode(obj) == ref, cls.__name__
        assert codec.decode(ref) == codec.reference_decode(ref), cls.__name__


def test_every_registered_type_compiles_eagerly():
    """register() compiles the flat encoder/decoder pair up front."""
    for cls in _registry().values():
        assert cls in codec._COMPILED_ENC, cls.__name__
        assert cls in codec._COMPILED_DEC, cls.__name__


def test_cached_frame_matches_direct_framing_for_every_registered_type():
    for code in sorted(_registry()):
        cls = _registry()[code]
        # two equal instances: one framed via the cache, one freshly
        cached = frames.encoded_frame(_instance_of(cls))
        direct = frame_message(_instance_of(cls))
        assert cached.frame == direct, cls.__name__
        assert cached.payload == codec.reference_encode(_instance_of(cls))
        assert cached.frame[frames.FRAME_OVERHEAD:] == cached.payload
        assert cached.frame_size == cached.payload_size + frames.FRAME_OVERHEAD


# --------------------------------------------------------------------------
# subclass polymorphism: the inline fast path must fall back to dispatch
# --------------------------------------------------------------------------

@register(910)
@dataclass(frozen=True)
class _StampedRecord(UpdateRecord):
    """Registered subclass used where the annotation says UpdateRecord."""


def test_subclass_in_nested_field_round_trips():
    sub = _StampedRecord(
        seqno=3, kind=UpdateKind.UPDATE, object_id="o",
        data=b"payload", sender="c1", timestamp=1.5,
    )
    delivery = Delivery(group="g", update=sub)
    ref = codec.reference_encode(delivery)
    assert codec.encode(delivery) == ref
    back = codec.decode(ref)
    assert type(back.update) is _StampedRecord
    assert back == delivery


# --------------------------------------------------------------------------
# buffer reuse
# --------------------------------------------------------------------------

_records = st.builds(
    UpdateRecord,
    seqno=st.integers(min_value=-(2**40), max_value=2**40),
    kind=st.sampled_from(list(UpdateKind)),
    object_id=st.text(max_size=20),
    data=st.binary(max_size=200),
    sender=st.text(max_size=10),
    timestamp=st.floats(allow_nan=False, allow_infinity=False),
)


@given(st.lists(_records, min_size=1, max_size=10))
def test_roundtrip_under_shared_buffer_reuse(records):
    """encode() reuses one module-level buffer; successive encodes must
    not bleed into each other and must stay spec-identical."""
    blobs = [codec.encode(r) for r in records]
    for record, blob in zip(records, blobs):
        assert blob == codec.reference_encode(record)
        assert codec.decode(blob) == record


@given(st.lists(st.integers(min_value=0, max_value=2**63), min_size=1, max_size=20))
def test_writer_clear_reuses_buffer(values):
    writer = Writer()
    for value in values:
        writer.clear()
        assert len(writer) == 0
        writer.write_uvarint(value)
        reader = Reader(writer.getvalue())
        assert reader.read_uvarint() == value
        assert reader.at_end()


# --------------------------------------------------------------------------
# memoization and the encode counters
# --------------------------------------------------------------------------

def test_cached_encode_is_one_encode_per_instance():
    msg = Ack(123456)
    before = codec.encode_counts().get(Ack, 0)
    first = codec.cached_encode(msg)
    assert codec.cached_encode(msg) is first
    assert codec.encoded_size(msg) == len(first)
    assert frames.encoded_frame(msg).payload == first
    after = codec.encode_counts().get(Ack, 0)
    assert after - before == 1


def test_equal_instances_cache_independently():
    # the cache is per-instance, not per-value
    a, b = Ack(9), Ack(9)
    assert codec.cached_encode(a) == codec.cached_encode(b)
    before = codec.encode_counts().get(Ack, 0)
    codec.cached_encode(Ack(9))
    assert codec.encode_counts().get(Ack, 0) == before + 1


def test_encoded_size_does_not_pay_a_sizing_pass():
    msg = Ack(77)
    before = codec.encode_counts().get(Ack, 0)
    size = codec.encoded_size(msg)
    assert codec.encoded_size(msg) == size
    assert frames.frame_size(msg) == size + frames.FRAME_OVERHEAD
    assert codec.encode_counts().get(Ack, 0) == before + 1


def test_reset_encode_counts():
    codec.cached_encode(Ack(5))
    assert codec.encode_counts()
    codec.reset_encode_counts()
    assert codec.encode_counts() == {}
