"""Fuzz tests: hostile bytes must fail cleanly, never crash.

A server reading from the network can receive anything; every decode
failure must surface as CodecError / FrameTooLargeError — no other
exception type, no hang, no partial mutation."""

import pytest
from hypothesis import example, given, settings
from hypothesis import strategies as st

from repro.core.errors import CodecError, FrameTooLargeError
from repro.wire import codec
from repro.wire.framing import FrameDecoder, frame_message
from repro.wire.messages import Ack, Hello


@given(st.binary(max_size=256))
@example(b"")
@example(b"\x00")
@example(b"\xff" * 64)
def test_decode_arbitrary_bytes_never_crashes(data):
    try:
        codec.decode(data)
    except CodecError:
        pass  # the only acceptable failure


@given(st.binary(max_size=256))
def test_framing_arbitrary_bytes_never_crashes(data):
    decoder = FrameDecoder(max_frame_size=1024)
    try:
        list(decoder.feed(data))
    except (CodecError, FrameTooLargeError):
        pass


@given(st.binary(max_size=64), st.integers(0, 60))
def test_bitflipped_frames_fail_cleanly(noise, position):
    frame = bytearray(frame_message(Hello(client_id="fuzz")))
    if position < len(frame):
        frame[position] ^= 0x5A
    decoder = FrameDecoder(max_frame_size=4096)
    try:
        decoded = list(decoder.feed(bytes(frame) + noise))
    except (CodecError, FrameTooLargeError):
        return
    # if it decoded, it must be a registered message object
    for message in decoded:
        assert codec.type_code_of(type(message)) >= 0


@given(st.lists(st.binary(min_size=1, max_size=32), max_size=8))
def test_valid_stream_with_garbage_prefix_rejected(chunks):
    """A stream that starts mid-frame cannot silently resync."""
    garbage = b"\x00\x00\x00\x02\xff\xff"  # claims a 2-byte frame of junk
    blob = garbage + frame_message(Ack(1))
    decoder = FrameDecoder()
    with pytest.raises(CodecError):
        consumed = []
        for chunk in [blob]:
            consumed.extend(decoder.feed(chunk))


@settings(max_examples=200)
@given(st.binary(min_size=1, max_size=128))
def test_truncated_valid_messages_fail_cleanly(data):
    full = frame_message(Hello(client_id=data.hex()))
    for cut in (1, len(full) // 2, len(full) - 1):
        decoder = FrameDecoder()
        assert list(decoder.feed(full[:cut])) == []  # incomplete: no output
