"""Tests for stream framing: chunked feeds, batching, limits."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.errors import FrameTooLargeError
from repro.wire import frames
from repro.wire.framing import FrameDecoder, frame_message
from repro.wire.messages import Ack, BcastUpdateRequest, DeliveryMode, PingRequest


def test_single_frame_roundtrip():
    msg = Ack(7)
    dec = FrameDecoder()
    assert list(dec.feed(frame_message(msg))) == [msg]
    assert dec.buffered == 0


def test_byte_at_a_time_feed():
    msg = BcastUpdateRequest(3, "g", "o", b"payload", DeliveryMode.EXCLUSIVE)
    data = frame_message(msg)
    dec = FrameDecoder()
    out = []
    for i in range(len(data)):
        out.extend(dec.feed(data[i : i + 1]))
    assert out == [msg]


def test_multiple_frames_in_one_chunk():
    msgs = [Ack(i) for i in range(10)]
    blob = b"".join(frame_message(x) for x in msgs)
    dec = FrameDecoder()
    assert list(dec.feed(blob)) == msgs


def test_partial_then_rest():
    msgs = [PingRequest(1), PingRequest(2)]
    blob = b"".join(frame_message(x) for x in msgs)
    dec = FrameDecoder()
    first = list(dec.feed(blob[:5]))
    rest = list(dec.feed(blob[5:]))
    assert first + rest == msgs


def test_incoming_frame_too_large():
    dec = FrameDecoder(max_frame_size=8)
    oversized = frame_message(BcastUpdateRequest(1, "g", "o", b"x" * 64, DeliveryMode.INCLUSIVE))
    with pytest.raises(FrameTooLargeError):
        list(dec.feed(oversized))


def test_outgoing_frame_too_large(monkeypatch):
    # The limit is enforced by the frame cache, which framing delegates to.
    monkeypatch.setattr(frames, "MAX_FRAME_SIZE", 1)
    with pytest.raises(FrameTooLargeError):
        frame_message(Ack(1))


def test_buffered_reports_pending_bytes():
    dec = FrameDecoder()
    data = frame_message(Ack(1))
    assert len(data) == 6  # 4-byte prefix + 2-byte payload
    list(dec.feed(data[:5]))
    assert dec.buffered == 1  # length prefix consumed, 1 payload byte held


@given(st.lists(st.integers(0, 2**31), max_size=20), st.integers(1, 64))
def test_arbitrary_chunking_property(request_ids, chunk):
    msgs = [Ack(i) for i in request_ids]
    blob = b"".join(frame_message(x) for x in msgs)
    dec = FrameDecoder()
    out = []
    for i in range(0, len(blob), chunk):
        out.extend(dec.feed(blob[i : i + chunk]))
    assert out == msgs
