"""Tests for the ISIS-like baseline: member-involving joins."""

from repro.baselines.isis import (
    IsisClientConfig,
    IsisClientCore,
    IsisServerConfig,
    IsisServerCore,
)
from repro.sim.host import SimHost
from repro.sim.kernel import SimKernel
from repro.sim.network import SimNetwork
from repro.sim.profiles import CLIENT_WORKSTATION, ULTRASPARC_1


def _invoke(host, method, *args):
    """Run a client-core request inside the simulation."""

    def action():
        method(*args)
        return []

    host.invoke(action)


class IsisWorld:
    """Minimal harness for baseline scenarios."""

    def __init__(self, failure_timeout=2.0):
        self.kernel = SimKernel()
        self.network = SimNetwork(self.kernel)
        self.network.add_segment("lan", 1_000_000, 0.0005)
        self.server_host = SimHost(
            self.kernel, self.network, "server", "lan", ULTRASPARC_1
        )
        self.server = IsisServerCore(
            IsisServerConfig(failure_timeout=failure_timeout), self.kernel
        )
        self.server_host.set_core(self.server)
        self.clients = {}

    def add_client(self, client_id, donate_delay=None, donate_never=False):
        host = SimHost(
            self.kernel, self.network, client_id, "lan", CLIENT_WORKSTATION
        )
        core = IsisClientCore(
            IsisClientConfig(client_id, donate_delay, donate_never), self.kernel
        )
        host.set_core(core)
        events = []
        host.on_notify(lambda kind, payload: events.append((kind, payload)))
        _invoke(host, core.connect, "server")
        self.clients[client_id] = (host, core, events)
        return host, core, events

    def run(self):
        self.kernel.run()

    def run_for(self, duration):
        self.kernel.run_for(duration)


class TestJoin:
    def test_first_join_is_empty_and_fast(self):
        world = IsisWorld()
        host, core, _events = world.add_client("alice")
        world.run()
        _invoke(host, core.create_group, "g")
        world.run()
        _invoke(host, core.join_group, "g")
        world.run()
        assert "g" in core.states

    def test_join_transfers_state_from_member(self):
        world = IsisWorld()
        a_host, a_core, _ = world.add_client("alice")
        world.run()
        _invoke(a_host, a_core.create_group, "g")
        world.run()
        _invoke(a_host, a_core.join_group, "g")
        world.run()
        _invoke(a_host, a_core.bcast_update, "g", "o", b"data")
        world.run()
        assert a_core.states["g"].get("o").materialized() == b"data"

        b_host, b_core, _ = world.add_client("bob")
        world.run()
        _invoke(b_host, b_core.join_group, "g")
        world.run()
        assert b_core.states["g"].get("o").materialized() == b"data"

    def test_slow_member_slows_the_join(self):
        world = IsisWorld()
        a_host, a_core, _ = world.add_client("alice", donate_delay=1.5)
        world.run()
        _invoke(a_host, a_core.create_group, "g")
        world.run()
        _invoke(a_host, a_core.join_group, "g")
        world.run()

        b_host, b_core, _ = world.add_client("bob")
        world.run()
        start = world.kernel.now()
        _invoke(b_host, b_core.join_group, "g")
        world.run()
        elapsed = world.kernel.now() - start
        assert "g" in b_core.states
        assert elapsed >= 1.5  # paper: "slow members can slow down the join"

    def test_hung_donor_costs_failure_timeout(self):
        world = IsisWorld(failure_timeout=2.0)
        a_host, a_core, _ = world.add_client("alice", donate_never=True)
        world.run()
        _invoke(a_host, a_core.create_group, "g")
        world.run()
        _invoke(a_host, a_core.join_group, "g")
        world.run()

        b_host, b_core, _ = world.add_client("bob")
        world.run_for(0.5)
        start = world.kernel.now()
        _invoke(b_host, b_core.join_group, "g")
        world.run_for(6.0)
        elapsed = world.kernel.now() - start
        assert "g" in b_core.states
        # the join paid the full failure-detection timeout before the
        # (sole, hung) donor was given up on
        assert elapsed >= 2.0

    def test_second_donor_tried_after_timeout(self):
        world = IsisWorld(failure_timeout=1.0)
        a_host, a_core, _ = world.add_client("alice", donate_never=True)
        world.run()
        _invoke(a_host, a_core.create_group, "g")
        world.run()
        _invoke(a_host, a_core.join_group, "g")
        world.run()
        # carol joins: alice never answers, so carol pays the timeout and
        # comes in with empty state, then writes fresh data
        c_host, c_core, _ = world.add_client("carol")
        world.run_for(0.5)
        _invoke(c_host, c_core.join_group, "g")
        world.run_for(3.0)
        assert "g" in c_core.states
        _invoke(c_host, c_core.bcast_update, "g", "o", b"fresh")
        world.run_for(1.0)

        # bob's join asks alice (hung, 1 s timeout) then carol (answers)
        b_host, b_core, _ = world.add_client("bob")
        world.run_for(0.5)
        start = world.kernel.now()
        _invoke(b_host, b_core.join_group, "g")
        world.run_for(5.0)
        elapsed = world.kernel.now() - start
        assert b_core.states["g"].get("o").materialized() == b"fresh"
        assert elapsed >= 1.0

    def test_multicast_reaches_members(self):
        world = IsisWorld()
        a_host, a_core, a_events = world.add_client("alice")
        b_host, b_core, b_events = world.add_client("bob")
        world.run()
        _invoke(a_host, a_core.create_group, "g")
        world.run()
        _invoke(a_host, a_core.join_group, "g")
        world.run()
        _invoke(b_host, b_core.join_group, "g")
        world.run()
        _invoke(a_host, a_core.bcast_update, "g", "o", b"x")
        world.run()
        deliveries_b = [p for k, p in b_events if k == "delivery"]
        assert len(deliveries_b) == 1
        assert b_core.states["g"].get("o").materialized() == b"x"

    def test_crashed_last_member_loses_state(self):
        """The persistence contrast with Corona: when the only member
        crashes, the state it held is gone for the next joiner."""
        world = IsisWorld()
        a_host, a_core, _ = world.add_client("alice")
        world.run()
        _invoke(a_host, a_core.create_group, "g")
        world.run()
        _invoke(a_host, a_core.join_group, "g")
        world.run()
        _invoke(a_host, a_core.bcast_update, "g", "o", b"precious")
        world.run()
        a_host.crash()
        world.run()

        b_host, b_core, _ = world.add_client("bob")
        world.run()
        _invoke(b_host, b_core.join_group, "g")
        world.run_for(6.0)
        assert "g" in b_core.states
        assert "o" not in b_core.states["g"]  # the state did not survive
