#!/usr/bin/env python
"""Doc-drift gate for the elastic-topology contract.

``docs/architecture.md`` §8 ("Elastic topology") is the normative
description of live migration and the autoscaling control loop.  This
script fails (exit 1) when the document stops mentioning any name the
code actually exports:

* every ``TopologyConfig`` knob (the control-loop thresholds);
* every migration outcome label (``repro.runtime.migration.OUTCOMES``)
  plus the two in-flight phases (``freezing``, ``installing``);
* the fencing error code (``corona.stale_epoch``) and its counter
  (``stale_epoch_rejects``);
* the lease-discipline deepcheck rule (``SHARD004``) and the
  strip-the-edge helper (``strip_migration_edges``).

Run from the repo root with
``PYTHONPATH=src python tools/check_topology_docs.py`` (CI does; see
.github/workflows/ci.yml).  A new knob or phase therefore cannot ship
without its documentation.
"""

from __future__ import annotations

import sys
from dataclasses import fields
from pathlib import Path

from repro.core.errors import StaleEpochError
from repro.runtime.migration import OUTCOMES
from repro.runtime.topology import TopologyConfig

DOC = Path(__file__).resolve().parents[1] / "docs" / "architecture.md"

#: The front's in-flight migration phases (see ShardSessions).
PHASES = ("freezing", "installing")


def required_names() -> list[str]:
    names = [f.name for f in fields(TopologyConfig)]
    names += list(OUTCOMES) + list(PHASES)
    names += [StaleEpochError.code, "stale_epoch_rejects"]
    names += ["SHARD004", "strip_migration_edges"]
    return names


def main() -> int:
    if not DOC.exists():
        print(f"check_topology_docs: {DOC} does not exist", file=sys.stderr)
        return 1
    text = DOC.read_text()
    missing = [name for name in required_names() if name not in text]
    if missing:
        for name in missing:
            print(
                f"check_topology_docs: docs/architecture.md does not mention "
                f"{name!r} (exported by the elastic-topology layer)",
                file=sys.stderr,
            )
        return 1
    print(
        f"check_topology_docs: docs/architecture.md covers all "
        f"{len(required_names())} exported topology names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
