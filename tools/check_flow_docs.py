#!/usr/bin/env python
"""Doc-drift gate for the flow-control contract.

``docs/flow-control.md`` is the *normative* description of the transport
flow-control policy.  This script fails (exit 1) when the document stops
mentioning any name the code actually exports:

* every ``FlowControlConfig`` knob (``repro.net.flowcontrol.policy_knobs()``);
* every priority lane (``Lane``);
* every typed disconnect reason (``DisconnectReason``).

Run from the repo root with ``PYTHONPATH=src python tools/check_flow_docs.py``
(CI does; see .github/workflows/ci.yml).  A new knob/lane/reason therefore
cannot ship without its documentation.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.net.flowcontrol import Lane, policy_knobs
from repro.wire.messages import DisconnectReason

DOC = Path(__file__).resolve().parents[1] / "docs" / "flow-control.md"


def required_names() -> list[str]:
    names = list(policy_knobs())
    names += [lane.name for lane in Lane]
    names += [reason.name for reason in DisconnectReason]
    return names


def main() -> int:
    if not DOC.exists():
        print(f"check_flow_docs: {DOC} does not exist", file=sys.stderr)
        return 1
    text = DOC.read_text()
    missing = [name for name in required_names() if name not in text]
    if missing:
        for name in missing:
            print(
                f"check_flow_docs: docs/flow-control.md does not mention "
                f"{name!r} (exported by the flow-control layer)",
                file=sys.stderr,
            )
        return 1
    print(
        f"check_flow_docs: docs/flow-control.md covers all "
        f"{len(required_names())} exported policy names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
