#!/usr/bin/env python
"""Doc-drift gate for the state-transfer contract.

``docs/protocol.md`` §3.5 is the *normative* description of join-time
state transfer, including the chunked streaming path.  This script fails
(exit 1) when the document stops mentioning any name the code actually
exports:

* every ``TransferConfig`` knob (``repro.core.transfer.transfer_knobs()``);
* every ``TransferPolicy`` value;
* every ``SNAP_*`` snapshot flag;
* the transfer wire messages (``StateChunk``, ``ChunkAck``,
  ``TransferResume``).

Run from the repo root with
``PYTHONPATH=src python tools/check_transfer_docs.py`` (CI does; see
.github/workflows/ci.yml).  A new knob/flag/message therefore cannot
ship without its documentation.
"""

from __future__ import annotations

import sys
from pathlib import Path

from repro.core.transfer import transfer_knobs
from repro.wire import messages
from repro.wire.messages import TransferPolicy

DOC = Path(__file__).resolve().parents[1] / "docs" / "protocol.md"

_TRANSFER_MESSAGES = ("StateChunk", "ChunkAck", "TransferResume")


def required_names() -> list[str]:
    names = list(transfer_knobs())
    names += [policy.name for policy in TransferPolicy]
    names += [flag for flag in messages.__all__ if flag.startswith("SNAP_")]
    names += list(_TRANSFER_MESSAGES)
    return names


def main() -> int:
    if not DOC.exists():
        print(f"check_transfer_docs: {DOC} does not exist", file=sys.stderr)
        return 1
    text = DOC.read_text()
    missing = [name for name in required_names() if name not in text]
    if missing:
        for name in missing:
            print(
                f"check_transfer_docs: docs/protocol.md does not mention "
                f"{name!r} (exported by the state-transfer layer)",
                file=sys.stderr,
            )
        return 1
    print(
        f"check_transfer_docs: docs/protocol.md covers all "
        f"{len(required_names())} exported transfer names"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
